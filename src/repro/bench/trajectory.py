"""Cross-run performance trajectory: history in ``BENCH_perf.json``.

``python -m repro perf`` used to overwrite ``BENCH_perf.json`` with a
single snapshot; regressions could only be judged against one pinned
number. This module turns the file into a *trajectory*: every perf run
appends a timestamped entry to a bounded ``history`` array (the live
snapshot and the ``pre_pr_baseline`` pin are preserved unchanged, so
the CI perf-smoke gate keeps reading the same keys), and

- ``python -m repro perf --compare [N]`` renders the last N entries as
  a Markdown trend table plus an ASCII plot of kernel events/sec and
  fig4a sweep wall-clock across runs, and
- ``python -m repro report --history`` emits the same trend as a
  standalone Markdown report.

History entries are plain scalars (no nested run arrays) so the file
stays small: :data:`HISTORY_LIMIT` runs at ~10 lines each.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.obs.ascii import render_curves
from repro.obs.report import md_table

#: Bound on the ``history`` array; the oldest entries fall off first.
HISTORY_LIMIT = 200


def normalize_entry(entry: dict) -> dict:
    """History hygiene applied on every write: drop null-valued keys
    (older writers emitted ``"jobs": null`` and null wall times on fast
    runs) and guarantee a ``ts`` key. Readers still tolerate
    unnormalized entries -- every consumer uses ``.get()``."""
    out = {key: value for key, value in entry.items() if value is not None}
    out.setdefault("ts", "")
    return out


def history_entry(result: dict, timestamp: str) -> dict:
    """Flatten one perf ``result`` dict into a (normalized) history
    entry. Named model benches contribute one
    ``bench_<name>_events_scheduled`` scalar each, so the trajectory
    shows where event-count wins land or regress per benchmark."""
    kernel = result.get("kernel") or {}
    partition = result.get("kernel_partition") or {}
    timeline = result.get("kernel_timeline") or {}
    fig4a = result.get("fig4a_fast") or {}
    host = result.get("host") or {}
    entry = {
        "ts": timestamp,
        "kernel_events_per_sec": kernel.get("events_per_sec"),
        "kernel_events_scheduled": kernel.get("events_scheduled"),
        "kernel_events_dispatched": kernel.get("events_dispatched"),
        "partition_events_per_sec": partition.get("events_per_sec"),
        "partition_speedup_vs_serial": partition.get("speedup_vs_serial"),
        "partition_exact_speedup": partition.get("exact_speedup_vs_serial"),
        "kernel_timeline_overhead": timeline.get("overhead_vs_off"),
        "fig4a_serial_wall_s": fig4a.get("serial_wall_s"),
        "fig4a_parallel_wall_s": fig4a.get("parallel_wall_s"),
        "jobs": fig4a.get("jobs"),
        "host_cpu_count": host.get("cpu_count"),
        "python": host.get("python"),
    }
    for name, stats in sorted((result.get("benches") or {}).items()):
        entry[f"bench_{name}_events_scheduled"] = \
            (stats or {}).get("events_scheduled")
    return normalize_entry(entry)


def load_perf(path: str) -> Optional[dict]:
    """The parsed perf artifact at ``path``, or None."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def carry_history(out_path: str,
                  fallback_path: str = "BENCH_perf.json") -> List[dict]:
    """The history to extend: the out file's, else the committed
    artifact's (so a CI run writing ``BENCH_perf_ci.json`` still shows
    the repo's trajectory), else empty."""
    for path in (out_path, fallback_path):
        prior = load_perf(path)
        if prior and isinstance(prior.get("history"), list):
            # Normalize on the way through: entries written before the
            # hygiene rules (null-valued keys, missing ts) come out
            # clean on the next write.
            return [normalize_entry(dict(e)) for e in prior["history"]
                    if isinstance(e, dict)]
        if prior is not None:
            # A pre-trajectory (schema 1) artifact: seed the history
            # with its snapshot so the first trend has two points.
            entry = history_entry(prior, timestamp="(pre-history)")
            if entry.get("kernel_events_per_sec"):
                return [entry]
            return []
    return []


def append_history(history: List[dict], result: dict,
                   timestamp: str) -> List[dict]:
    """History plus this run, oldest-first, bounded."""
    out = list(history) + [history_entry(result, timestamp)]
    return out[-HISTORY_LIMIT:]


def _fmt_delta(current: Optional[float], base: Optional[float]) -> str:
    if not current or not base:
        return "-"
    return f"{100.0 * (current / base - 1.0):+.1f}%"


def _fmt_num(value, suffix: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and value != int(value):
        return f"{value:,.2f}{suffix}"
    return f"{value:,.0f}{suffix}"


def render_trend(history: List[dict], baseline: Optional[dict] = None,
                 last: Optional[int] = None,
                 title: str = "perf trajectory") -> str:
    """Markdown + ASCII trend of kernel events/sec and sweep wall-clock.

    ``baseline`` is the ``pre_pr_baseline`` pin (rendered as a
    reference row); ``last`` keeps only the newest N entries.
    """
    entries = list(history)
    if last is not None and last > 0:
        entries = entries[-last:]
    out: List[str] = [f"# {title}", ""]
    if not entries:
        out.append("No history yet: run `python -m repro perf` to record "
                   "the first entry.")
        return "\n".join(out)

    first_ev = next((e.get("kernel_events_per_sec") for e in entries
                     if e.get("kernel_events_per_sec")), None)
    out.append(f"- runs: {len(entries)} (of {len(history)} recorded)")
    pin = (baseline or {}).get("kernel_events_per_sec")
    if pin:
        out.append(f"- pre-PR baseline pin: {pin:,} kernel ev/s")
    out.append("")
    out.append("## Kernel events/sec and sweep wall-clock by run")
    out.append("")
    rows = []
    prev_ev = None
    for index, entry in enumerate(entries):
        ev = entry.get("kernel_events_per_sec")
        rows.append([
            str(index),
            str(entry.get("ts") or "-"),
            _fmt_num(ev),
            _fmt_num(entry.get("kernel_events_scheduled")),
            _fmt_delta(ev, prev_ev),
            _fmt_delta(ev, first_ev) if index else "-",
            _fmt_num(entry.get("partition_speedup_vs_serial"), "x"),
            _fmt_num(entry.get("partition_exact_speedup"), "x"),
            _fmt_num(entry.get("fig4a_serial_wall_s"), "s"),
            _fmt_num(entry.get("fig4a_parallel_wall_s"), "s"),
        ])
        if ev:
            prev_ev = ev
    out.append(md_table(
        ["run", "timestamp", "kernel ev/s", "events sched", "vs prev",
         "vs first", "partition", "exact merge", "fig4a serial",
         "fig4a --jobs"],
        rows))
    out.append("")
    bench_keys = sorted({key for e in entries for key in e
                         if key.startswith("bench_")
                         and key.endswith("_events_scheduled")})
    if bench_keys:
        out.append("## Model-bench events_scheduled by run")
        out.append("")
        names = [k[len("bench_"):-len("_events_scheduled")]
                 for k in bench_keys]
        bench_rows = [[str(i), str(e.get("ts") or "-")]
                      + [_fmt_num(e.get(k)) for k in bench_keys]
                      for i, e in enumerate(entries)]
        out.append(md_table(["run", "timestamp"] + names, bench_rows))
        out.append("")

    ev_points = [(float(i), float(e["kernel_events_per_sec"]))
                 for i, e in enumerate(entries)
                 if e.get("kernel_events_per_sec")]
    if len(ev_points) >= 2:
        series = {"kernel": ev_points}
        if pin:
            series["pre-PR pin"] = [(p[0], float(pin)) for p in ev_points]
        out.append("```")
        out.append(render_curves(series, x_label="run",
                                 y_label="events/sec"))
        out.append("```")
        out.append("")
    wall_series = {}
    for key, name in (("fig4a_serial_wall_s", "serial"),
                      ("fig4a_parallel_wall_s", "--jobs")):
        pts = [(float(i), float(e[key])) for i, e in enumerate(entries)
               if e.get(key)]
        if len(pts) >= 2:
            wall_series[name] = pts
    if wall_series:
        out.append("## Sweep wall-clock (s) by run")
        out.append("")
        out.append("```")
        out.append(render_curves(wall_series, x_label="run",
                                 y_label="wall s"))
        out.append("```")
        out.append("")
    return "\n".join(out)


def compare_main(out_path: str = "BENCH_perf.json",
                 last: Optional[int] = None) -> int:
    """`repro perf --compare [N]`: print the trend for an existing
    artifact without re-running any benchmark."""
    perf = load_perf(out_path)
    if perf is None and out_path != "BENCH_perf.json":
        perf = load_perf("BENCH_perf.json")
    if perf is None:
        print(f"no perf artifact at {out_path}; run `python -m repro "
              "perf` first")
        return 1
    history = perf.get("history") or [
        history_entry(perf, timestamp="(snapshot)")]
    print(render_trend(history, baseline=perf.get("pre_pr_baseline"),
                       last=last))
    return 0
