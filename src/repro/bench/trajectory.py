"""Cross-run performance trajectory: history in ``BENCH_perf.json``.

``python -m repro perf`` used to overwrite ``BENCH_perf.json`` with a
single snapshot; regressions could only be judged against one pinned
number. This module turns the file into a *trajectory*: every perf run
appends a timestamped entry to a bounded ``history`` array (the live
snapshot and the ``pre_pr_baseline`` pin are preserved unchanged, so
the CI perf-smoke gate keeps reading the same keys), and

- ``python -m repro perf --compare [N]`` renders the last N entries as
  a Markdown trend table plus an ASCII plot of kernel events/sec and
  fig4a sweep wall-clock across runs, and
- ``python -m repro report --history`` emits the same trend as a
  standalone Markdown report.

History entries are plain scalars (no nested run arrays) so the file
stays small: :data:`HISTORY_LIMIT` runs at ~10 lines each.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.bench.ascii_plot import render_curves
from repro.obs.report import md_table

#: Bound on the ``history`` array; the oldest entries fall off first.
HISTORY_LIMIT = 200


def history_entry(result: dict, timestamp: str) -> dict:
    """Flatten one perf ``result`` dict into a history entry."""
    kernel = result.get("kernel") or {}
    fig4a = result.get("fig4a_fast") or {}
    host = result.get("host") or {}
    return {
        "ts": timestamp,
        "kernel_events_per_sec": kernel.get("events_per_sec"),
        "kernel_events_scheduled": kernel.get("events_scheduled"),
        "fig4a_serial_wall_s": fig4a.get("serial_wall_s"),
        "fig4a_parallel_wall_s": fig4a.get("parallel_wall_s"),
        "jobs": fig4a.get("jobs"),
        "host_cpu_count": host.get("cpu_count"),
        "python": host.get("python"),
    }


def load_perf(path: str) -> Optional[dict]:
    """The parsed perf artifact at ``path``, or None."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def carry_history(out_path: str,
                  fallback_path: str = "BENCH_perf.json") -> List[dict]:
    """The history to extend: the out file's, else the committed
    artifact's (so a CI run writing ``BENCH_perf_ci.json`` still shows
    the repo's trajectory), else empty."""
    for path in (out_path, fallback_path):
        prior = load_perf(path)
        if prior and isinstance(prior.get("history"), list):
            return list(prior["history"])
        if prior is not None:
            # A pre-trajectory (schema 1) artifact: seed the history
            # with its snapshot so the first trend has two points.
            entry = history_entry(prior, timestamp="(pre-history)")
            if entry["kernel_events_per_sec"]:
                return [entry]
            return []
    return []


def append_history(history: List[dict], result: dict,
                   timestamp: str) -> List[dict]:
    """History plus this run, oldest-first, bounded."""
    out = list(history) + [history_entry(result, timestamp)]
    return out[-HISTORY_LIMIT:]


def _fmt_delta(current: Optional[float], base: Optional[float]) -> str:
    if not current or not base:
        return "-"
    return f"{100.0 * (current / base - 1.0):+.1f}%"


def _fmt_num(value, suffix: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and value != int(value):
        return f"{value:,.2f}{suffix}"
    return f"{value:,.0f}{suffix}"


def render_trend(history: List[dict], baseline: Optional[dict] = None,
                 last: Optional[int] = None,
                 title: str = "perf trajectory") -> str:
    """Markdown + ASCII trend of kernel events/sec and sweep wall-clock.

    ``baseline`` is the ``pre_pr_baseline`` pin (rendered as a
    reference row); ``last`` keeps only the newest N entries.
    """
    entries = list(history)
    if last is not None and last > 0:
        entries = entries[-last:]
    out: List[str] = [f"# {title}", ""]
    if not entries:
        out.append("No history yet: run `python -m repro perf` to record "
                   "the first entry.")
        return "\n".join(out)

    first_ev = next((e.get("kernel_events_per_sec") for e in entries
                     if e.get("kernel_events_per_sec")), None)
    out.append(f"- runs: {len(entries)} (of {len(history)} recorded)")
    pin = (baseline or {}).get("kernel_events_per_sec")
    if pin:
        out.append(f"- pre-PR baseline pin: {pin:,} kernel ev/s")
    out.append("")
    out.append("## Kernel events/sec and sweep wall-clock by run")
    out.append("")
    rows = []
    prev_ev = None
    for index, entry in enumerate(entries):
        ev = entry.get("kernel_events_per_sec")
        rows.append([
            str(index),
            str(entry.get("ts", "-")),
            _fmt_num(ev),
            _fmt_delta(ev, prev_ev),
            _fmt_delta(ev, first_ev) if index else "-",
            _fmt_num(entry.get("fig4a_serial_wall_s"), "s"),
            _fmt_num(entry.get("fig4a_parallel_wall_s"), "s"),
        ])
        if ev:
            prev_ev = ev
    out.append(md_table(
        ["run", "timestamp", "kernel ev/s", "vs prev", "vs first",
         "fig4a serial", "fig4a --jobs"],
        rows))
    out.append("")

    ev_points = [(float(i), float(e["kernel_events_per_sec"]))
                 for i, e in enumerate(entries)
                 if e.get("kernel_events_per_sec")]
    if len(ev_points) >= 2:
        series = {"kernel": ev_points}
        if pin:
            series["pre-PR pin"] = [(p[0], float(pin)) for p in ev_points]
        out.append("```")
        out.append(render_curves(series, x_label="run",
                                 y_label="events/sec"))
        out.append("```")
        out.append("")
    wall_series = {}
    for key, name in (("fig4a_serial_wall_s", "serial"),
                      ("fig4a_parallel_wall_s", "--jobs")):
        pts = [(float(i), float(e[key])) for i, e in enumerate(entries)
               if e.get(key)]
        if len(pts) >= 2:
            wall_series[name] = pts
    if wall_series:
        out.append("## Sweep wall-clock (s) by run")
        out.append("")
        out.append("```")
        out.append(render_curves(wall_series, x_label="run",
                                 y_label="wall s"))
        out.append("```")
        out.append("")
    return "\n".join(out)


def compare_main(out_path: str = "BENCH_perf.json",
                 last: Optional[int] = None) -> int:
    """`repro perf --compare [N]`: print the trend for an existing
    artifact without re-running any benchmark."""
    perf = load_perf(out_path)
    if perf is None and out_path != "BENCH_perf.json":
        perf = load_perf("BENCH_perf.json")
    if perf is None:
        print(f"no perf artifact at {out_path}; run `python -m repro "
              "perf` first")
        return 1
    history = perf.get("history") or [
        history_entry(perf, timestamp="(snapshot)")]
    print(render_trend(history, baseline=perf.get("pre_pr_baseline"),
                       last=last))
    return 0
