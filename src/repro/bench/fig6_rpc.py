"""Fig 6: RocksDB over RPC -- stack/scheduler placement scenarios.

Fig 6a (single-queue Shinjuku): Offload-All ~= OnHost-All while freeing
9 host cores; OnHost-Scheduler saturates far lower (MMIO header reads);
Offload-All restricted to 15 host cores is 6.3% below OnHost-All.

Fig 6b (multi-queue SLO Shinjuku): Offload-All saturates 20.8% above
its single-queue self and within 2.2% of OnHost-All; apples-to-apples
it is 7.4% below.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.reporting import ExperimentReport
from repro.rpc.experiment import (
    SLO_SPECS,  # noqa: F401  (re-export: `python -m repro timeline fig6`)
    RpcPointResult,
    RpcScenario,
    run_rpc_point,
    saturation_at_slo,
    sweep_rpc_load,
)

#: Where saturation is read off each curve: single-queue tails blow up
#: near the knee (read at 300 us); the SLO-aware policy is read at the
#: GET class SLO itself.
SLO_SINGLE_NS = 300_000.0
SLO_MULTI_NS = 200_000.0

FAST_RATES = {
    RpcScenario.ONHOST_ALL: [180_000, 210_000, 230_000, 245_000, 258_000],
    RpcScenario.OFFLOAD_ALL: [180_000, 210_000, 230_000, 245_000, 258_000],
    RpcScenario.ONHOST_SCHED: [80_000, 110_000, 140_000, 160_000],
}
FULL_RATES = {
    RpcScenario.ONHOST_ALL:
        [150_000, 180_000, 205_000, 220_000, 232_000, 242_000, 250_000],
    RpcScenario.OFFLOAD_ALL:
        [150_000, 180_000, 205_000, 220_000, 232_000, 242_000, 250_000],
    RpcScenario.ONHOST_SCHED:
        [70_000, 95_000, 115_000, 132_000, 147_000, 158_000, 168_000],
}


def _sweep(scenario, multiqueue, fast, worker_cores=None, seed=1,
           jobs=None):
    rates = (FAST_RATES if fast else FULL_RATES)[scenario]
    duration = 70_000_000 if fast else 90_000_000
    return sweep_rpc_load(scenario, multiqueue, rates,
                          worker_cores=worker_cores,
                          duration_ns=duration, warmup_ns=duration // 4,
                          seed=seed, jobs=jobs)


def run(fast: bool = True, jobs: int = None) -> ExperimentReport:
    """Run the experiment; returns a paper-vs-measured report."""
    rows = []
    sats: Dict[tuple, float] = {}
    points_cache: Dict[tuple, list] = {}
    for multiqueue, slo in ((False, SLO_SINGLE_NS), (True, SLO_MULTI_NS)):
        # The multi-queue policy protects GET tails even past capacity
        # (RANGE work backs up silently), so 6b also requires a stable
        # run queue, measured in queued work.
        backlog_ms = 100.0 if multiqueue else None
        for scenario in (RpcScenario.ONHOST_ALL, RpcScenario.ONHOST_SCHED,
                         RpcScenario.OFFLOAD_ALL):
            points = _sweep(scenario, multiqueue, fast, jobs=jobs)
            points_cache[(multiqueue, scenario)] = points
            sats[(multiqueue, scenario)] = saturation_at_slo(
                points, slo, backlog_work_limit_ms=backlog_ms)
        # Apples-to-apples: Offload-All restricted to 15 host cores.
        points15 = _sweep(RpcScenario.OFFLOAD_ALL, multiqueue, fast,
                          worker_cores=15, jobs=jobs)
        sats[(multiqueue, "offload-15")] = saturation_at_slo(
            points15, slo, backlog_work_limit_ms=backlog_ms)

    for multiqueue, figure in ((False, "6a"), (True, "6b")):
        base = sats[(multiqueue, RpcScenario.ONHOST_ALL)]
        for scenario in (RpcScenario.ONHOST_ALL, RpcScenario.ONHOST_SCHED,
                         RpcScenario.OFFLOAD_ALL):
            sat = sats[(multiqueue, scenario)]
            rows.append((figure, scenario.value, f"{sat:,.0f}",
                         f"{100 * (sat / base - 1):+.1f}%"))
        sat15 = sats[(multiqueue, "offload-15")]
        rows.append((figure, "offload-all (15 cores)", f"{sat15:,.0f}",
                     f"{100 * (sat15 / base - 1):+.1f}%"))
    # The paper's +20.8% compares both policies at the GET class SLO.
    single_at_slo = saturation_at_slo(
        points_cache[(False, RpcScenario.OFFLOAD_ALL)], SLO_MULTI_NS)
    multi_at_slo = sats[(True, RpcScenario.OFFLOAD_ALL)]
    mq_gain = 100.0 * (multi_at_slo / max(single_at_slo, 1.0) - 1.0)
    return ExperimentReport(
        experiment_id="fig6",
        title="RPC deployments: saturation and deltas vs OnHost-All",
        headers=("figure", "scenario", "saturation", "vs onhost-all"),
        rows=rows,
        notes=f"Multi-queue Offload-All gains {mq_gain:+.1f}% over "
              f"single-queue at the {SLO_MULTI_NS / 1000:.0f} us GET SLO "
              f"(paper +20.8%). Paper deltas: 6a offload-15 -6.3%; "
              f"6b offload-all -2.2%, offload-15 -7.4%.",
    )


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
