"""Section 7.2.2's optimization table: Wave-16 FIFO saturation as the
section 5 optimizations are applied cumulatively.

Paper: 258,000 -> 520,000 (+102%) -> 680,000 (+31%) -> 895,000 (+32%).
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport
from repro.core import Placement, WaveOpts
from repro.sched import FifoPolicy
from repro.sched.experiment import (  # noqa: F401  (SLO_SPECS re-export)
    SLO_SPECS,
    saturation_throughput,
    sweep_load,
)
from repro.workloads import RocksDbModel

PAPER = {
    "baseline": 258_000,
    "+nic-wb": 520_000,
    "+host-wc/wt": 680_000,
    "+prestage/prefetch": 895_000,
}
P99_LIMIT_NS = 300_000.0


def saturation_for(opts: WaveOpts, center: float, fast: bool,
                   seed: int = 1, jobs: int = None) -> float:
    factors = (0.7, 0.9, 1.0, 1.1, 1.25) if fast \
        else (0.6, 0.75, 0.85, 0.95, 1.02, 1.1, 1.2, 1.35)
    rates = [center * f for f in factors]
    duration = 25_000_000 if fast else 45_000_000
    results = sweep_load(Placement.NIC, opts, 16, FifoPolicy,
                         RocksDbModel.fifo_mix, rates,
                         duration_ns=duration, warmup_ns=duration // 5,
                         seed=seed, jobs=jobs)
    return saturation_throughput(results, P99_LIMIT_NS)


def run(fast: bool = True, jobs: int = None) -> ExperimentReport:
    """Run the experiment; returns a paper-vs-measured report."""
    rows = []
    prev = None
    for label, opts in WaveOpts.ladder():
        sat = saturation_for(opts, PAPER[label], fast, jobs=jobs)
        gain = "" if prev is None else f"+{100 * (sat / prev - 1):.0f}%"
        paper_gain = ""
        if prev is not None:
            labels = list(PAPER)
            idx = labels.index(label)
            paper_gain = f"+{100 * (PAPER[label] / PAPER[labels[idx - 1]] - 1):.0f}%"
        rows.append((label, f"{sat:,.0f}", gain,
                     f"{PAPER[label]:,}", paper_gain))
        prev = sat
    return ExperimentReport(
        experiment_id="opt-breakdown",
        title="Section 7.2.2: cumulative optimizations, Wave-16 FIFO",
        headers=("configuration", "saturation", "gain", "paper", "paper gain"),
        rows=rows,
        notes="Each level must improve on the previous; the first jump "
              "(agent-side WB PTEs) dominates.",
    )


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
