"""Section 7.3.3: coherent-interconnect (UPI) emulation.

Paper: offload slowdowns vs on-host of 1.3% (3 GHz), 2.5% (2.5 GHz),
3.5% (2 GHz); UPI at 3 GHz beats the PCIe SmartNIC by 0.9%.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport
from repro.rpc.experiment import SLO_SPECS  # noqa: F401  (timeline CLI)
from repro.rpc.upi import (
    DEFAULT_RATES,
    pcie_offload_saturation,
    run_upi_comparison,
)

PAPER_SLOWDOWNS = {3.0: 1.3, 2.5: 2.5, 2.0: 3.5}


def run(fast: bool = True) -> ExperimentReport:
    """Run the experiment; returns a paper-vs-measured report."""
    duration = 30_000_000 if fast else 50_000_000
    rates = DEFAULT_RATES if not fast else DEFAULT_RATES[::2]
    results = run_upi_comparison(rates=list(rates), duration_ns=duration,
                                 warmup_ns=duration // 4)
    pcie = pcie_offload_saturation(rates=list(rates), duration_ns=duration,
                                   warmup_ns=duration // 4)
    rows = []
    upi3 = None
    for r in results:
        if r.nic_ghz is None:
            rows.append(("on-host @3.5GHz", f"{r.saturation:,.0f}", "", ""))
            continue
        if r.nic_ghz == 3.0:
            upi3 = r.saturation
        rows.append((f"UPI offload @{r.nic_ghz}GHz", f"{r.saturation:,.0f}",
                     f"{r.slowdown_pct:.1f}%",
                     f"{PAPER_SLOWDOWNS[r.nic_ghz]:.1f}%"))
    note = ""
    if upi3:
        note = (f"PCIe offload saturates at {pcie:,.0f}; UPI@3GHz is "
                f"{100 * (upi3 / pcie - 1):+.1f}% vs PCIe (paper +0.9%).")
    return ExperimentReport(
        experiment_id="upi",
        title="UPI-attached emulated SmartNIC: slowdown vs on-host",
        headers=("configuration", "saturation", "slowdown", "paper"),
        rows=rows,
        notes=note,
    )


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
