"""Fig 4a: FIFO scheduling of 10 us RocksDB GETs.

Three curves -- On-Host (15 workers + 1 host agent core), Wave-15
(apples-to-apples), Wave-16 (using the freed host core) -- and their
saturation throughputs. Paper: Wave-15 saturates 1.1% below On-Host,
Wave-16 4.6% above, with ~3 us higher tail for Wave-15.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport
from repro.core import Placement, WaveOpts
from repro.sched import FifoPolicy
from repro.sched.experiment import (
    SLO_SPECS,  # noqa: F401  (re-export: `python -m repro timeline fig4a`)
    SchedPointResult,
    saturation_throughput,
    sweep_load,
)
from repro.workloads import RocksDbModel

SCENARIOS = (
    ("On-Host", Placement.HOST, 15),
    ("Wave-15", Placement.NIC, 15),
    ("Wave-16", Placement.NIC, 16),
)
PAPER_VS_ONHOST = {"On-Host": 0.0, "Wave-15": -1.1, "Wave-16": +4.6}
P99_LIMIT_NS = 300_000.0

FAST_RATES = [600_000, 700_000, 780_000, 830_000, 870_000, 900_000, 930_000]
FULL_RATES = [500_000, 600_000, 700_000, 760_000, 800_000, 830_000,
              860_000, 880_000, 900_000, 920_000, 940_000]


def sweep(placement, cores, rates, duration_ns, warmup_ns, seed=1,
          jobs=None):
    # RocksDbModel.fifo_mix is passed by reference (not a lambda) so the
    # point specs stay picklable for the --jobs process pool.
    return sweep_load(placement, WaveOpts.full(), cores, FifoPolicy,
                      RocksDbModel.fifo_mix, rates,
                      duration_ns=duration_ns, warmup_ns=warmup_ns,
                      seed=seed, jobs=jobs)


def run(fast: bool = True, jobs: int = None) -> ExperimentReport:
    """Run the experiment; returns a paper-vs-measured report."""
    rates = FAST_RATES if fast else FULL_RATES
    duration = 25_000_000 if fast else 50_000_000
    warmup = 5_000_000 if fast else 12_000_000
    curves = {}
    sats = {}
    for name, placement, cores in SCENARIOS:
        curves[name] = sweep(placement, cores, rates, duration, warmup,
                             jobs=jobs)
        sats[name] = saturation_throughput(curves[name], P99_LIMIT_NS)
    rows = []
    for name, _, cores in SCENARIOS:
        delta = 100.0 * (sats[name] / sats["On-Host"] - 1.0)
        low_load_p99 = curves[name][0].get_p99_us
        rows.append((name, cores, f"{sats[name]:,.0f}",
                     f"{delta:+.1f}%", f"{PAPER_VS_ONHOST[name]:+.1f}%",
                     f"{low_load_p99:.0f}"))
    return ExperimentReport(
        experiment_id="fig4a",
        title="FIFO: saturation throughput (req/s) vs On-Host",
        headers=("scenario", "host cores", "saturation", "vs on-host",
                 "paper", "low-load p99 (us)"),
        rows=rows,
        notes=f"Saturation = max throughput with GET p99 <= "
              f"{P99_LIMIT_NS / 1000:.0f} us.",
    )


def curves_for_plot(fast: bool = True, jobs: int = None):
    """(rate, p99) series per scenario -- Fig 4a's actual axes."""
    rates = FAST_RATES if fast else FULL_RATES
    duration = 25_000_000 if fast else 50_000_000
    out = {}
    for name, placement, cores in SCENARIOS:
        results = sweep(placement, cores, rates, duration, duration // 5,
                        jobs=jobs)
        out[name] = [(r.achieved_rate, r.get_p99_us) for r in results]
    return out


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
