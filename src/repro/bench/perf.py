"""Performance microbenchmarks with a tracked baseline.

Two measurements, written to ``BENCH_perf.json``:

- **Kernel events/sec**: a pure simulation-kernel workload (timeout
  chains, ``any_of`` race pairs, interrupt-driven preemption) that
  exercises exactly the hot paths the fast dispatch loop optimizes --
  heap pop, cancelled-event skipping, the ``Timeout`` freelist, and
  callback dispatch -- with no model code in the way.
- **partitioned kernel vs serial**: the same workload spread over the
  three hardware-derived timing domains (host / interconnect / NIC),
  run through the partitioned parallel-DES engine
  (:mod:`repro.sim.partition`) in both its modes -- the window-batched
  default and the exact-order merge fallback -- and the serial kernel;
  gates on dispatch-count equality across all three and on the batched
  mode actually beating serial (>= 1.0x).
- **fig4a fast wall-clock**: the end-to-end Fig 4a sweep in ``--fast``
  mode, serially and (on multicore hosts) through the ``--jobs``
  process pool.
- **model benches**: named fixed-scale end-to-end points (a Fig 5
  ticks-on VM point, the reduced Fig 4a FIFO point) with their
  deterministic ``events_scheduled`` counts, tracked per benchmark in
  the history.

``PRE_PR_BASELINE`` pins the numbers measured on the pre-optimization
kernel (same workload, same host) so the speedup is auditable.
``--check`` gates on the *committed* ``BENCH_perf.json`` two ways: it
fails when the fresh kernel events/sec falls more than 30% below the
committed figure (wide, because runner speed is noisy), and when the
fresh kernel ``events_scheduled`` -- a deterministic count -- creeps
more than 10% above the committed value (an event-reduction mechanism
stopped engaging).

Every run also appends a timestamped entry to the artifact's
``history`` array (schema ``wave-repro-perf/2``), giving a cross-run
perf *trajectory* rather than a single point;
``python -m repro perf --compare [N]`` renders it (see
:mod:`repro.bench.trajectory`).

Run as ``python -m repro perf [--fast] [--check] [--jobs N]
[--repeats N] [--compare [N]]``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Optional

from repro.sim import Environment, Interrupt

# Measured on the pre-PR kernel (commit 271e81d), same workload and
# host (1 CPU) as measure_kernel() below. ``kernel_events_logical`` is
# the workload-determined schedule count (env._seq) and must not drift:
# the optimized kernel performs exactly as many *logical* schedules as
# the one it replaced. ``kernel_events_scheduled`` -- heap admissions --
# is what the timer wheel and poll coalescing reduce; the pre-PR kernel
# admitted every logical schedule to the heap, so the two started
# equal. The events-reduction acceptance is measured against this pin.
PRE_PR_BASELINE = {
    "kernel_events_per_sec": 256_234,
    "kernel_events_scheduled": 3_676_318,
    "kernel_events_logical": 3_676_318,
    "fig4a_fast_wall_s": 48.67,
    "host_cpu_count": 1,
}

# --check fails when fresh events/sec < floor * committed events/sec.
REGRESSION_FLOOR = 0.70
# --check floor on the partitioned kernel's throughput relative to the
# serial kernel on the same workload, same run -- measured in the
# window-batched default mode, which drains proven-independent safe
# windows without per-event merge compares and must actually beat the
# serial kernel on the domain-spread workload. (The exact-order merge
# fallback is recorded alongside as ``exact_speedup_vs_serial`` but
# not gated; it historically sits around 0.7-0.9x.)
PARTITION_SPEEDUP_FLOOR = 1.0
# --check floor on the kernel's throughput with the timeline sampler
# attached (telemetry hub + metric timelines at a deliberately hot
# 5 us period) relative to the same hub without a timeline. The
# sampler is a passive clock hook -- no events, no seq numbers -- so
# it must cost at most ~3% even when sampling 200x more often than
# the 1 ms default.
TIMELINE_OVERHEAD_FLOOR = 0.97
#: Sampling period of the overhead bench (ns). 200x hotter than the
#: default so the gate measures the hook, not the idle branch.
TIMELINE_PERIOD_NS = 5_000.0
# --check also fails when fresh heap admissions creep more than 10%
# above the committed count: the event-reduction machinery (timer
# wheel, poll coalescing, virtual ticks) silently falling out of use
# would show up here long before wall-clock noise could prove it.
EVENTS_CEILING = 1.10


def _build_workload(env, chains, racers, preempts, domains=None, cross=0):
    """The kernel microbench workload.

    ``domains``, when given, spreads the processes round-robin over
    ``env.domain(...)`` tags (a no-op on serial envs, so serial and
    partitioned runs build the byte-identical model). ``cross`` adds
    that many cross-domain sender loops using the lookahead-checked
    channel (plain timeouts on serial envs).
    """
    names = tuple(domains) if domains else ()

    def tagged(index):
        return env.domain(names[index % len(names)]) if names \
            else env.domain("host")

    def chain(period):
        while True:
            yield env.timeout(period)

    def racer_pair(period):
        slot = {}

        def waiter():
            while True:
                ev = env.event()
                slot["ev"] = ev
                yield env.any_of([ev, env.timeout(50 * period)])

        def kicker():
            while True:
                yield env.timeout(period)
                ev = slot.get("ev")
                if ev is not None and not ev.triggered:
                    ev.succeed()

        return waiter, kicker

    def victim():
        while True:
            try:
                yield env.timeout(1_000_000)
            except Interrupt:
                pass

    def preemptor(proc, period):
        while True:
            yield env.timeout(period)
            if proc.is_alive:
                proc.interrupt("slice")

    def crosser(dst, period):
        while True:
            yield env.cross_timeout(dst, period)

    for i in range(chains):
        with tagged(i):
            env.process(chain(90 + i), name=f"chain{i}")
    for i in range(racers):
        waiter, kicker = racer_pair(110 + i)
        with tagged(i):
            env.process(waiter(), name=f"waiter{i}")
            env.process(kicker(), name=f"kicker{i}")
    for i in range(preempts):
        with tagged(i):
            proc = env.process(victim(), name=f"victim{i}")
            env.process(preemptor(proc, 130 + i), name=f"preemptor{i}")
    for i in range(cross):
        # Delay must clear the largest hw-derived lookahead window
        # (910 ns for nic->host under the pcie preset).
        with tagged(i):
            env.process(crosser(names[(i + 1) % len(names)], 1_000 + i),
                        name=f"cross{i}")


def kernel_events_point(horizon_ns: int = 2_000_000, chains: int = 40,
                        racers: int = 40, preempts: int = 10) -> dict:
    """One kernel microbench run: event counters plus wall seconds.

    - ``events_logical``: schedule requests (``env._seq``) -- workload-
      determined, identical whatever the queue implementation;
    - ``events_scheduled``: heap admissions -- what the timer wheel and
      poll coalescing actually cut;
    - ``events_dispatched``: callbacks run.
    """
    env = Environment()
    _build_workload(env, chains, racers, preempts)
    t0 = time.perf_counter()
    env.run(until=horizon_ns)
    wall = time.perf_counter() - t0
    return {
        "events_logical": env._seq,
        "events_scheduled": env.events_scheduled,
        "events_dispatched": env.events_dispatched,
        "timers_coalesced": env.timers_coalesced,
        "wall_s": round(wall, 4),
    }


def measure_kernel(repeats: int = 3) -> dict:
    """Best-of-N kernel events/sec (best = least scheduler noise).

    events/sec keeps its original definition -- logical schedules per
    wall second -- so the figure stays comparable across the whole
    history even as heap admissions shrink.
    """
    kernel_events_point(horizon_ns=200_000)  # warmup
    runs = [kernel_events_point() for _ in range(repeats)]
    best = max(r["events_logical"] / r["wall_s"] for r in runs)
    first = runs[0]
    return {
        "events_scheduled": first["events_scheduled"],
        "events_dispatched": first["events_dispatched"],
        "events_logical": first["events_logical"],
        "timers_coalesced": first["timers_coalesced"],
        "events_per_sec": round(best),
        "runs": runs,
    }


#: Horizon of one partition-bench run. Short enough (~5 s of wall per
#: engine run) that machine-wide load drift cannot move much *within*
#: one serial/batched pair -- the paired-ratio estimator below depends
#: on pair members seeing the same machine.
PARTITION_HORIZON_NS = 1_000_000


def partition_kernel_point(engine: str,
                           horizon_ns: int = PARTITION_HORIZON_NS,
                           chains: int = 40, racers: int = 40,
                           preempts: int = 10, cross: int = 9) -> dict:
    """One partitioned-kernel bench run; the same workload whatever the
    ``engine`` ("serial", "exact", or "batched"), spread over the three
    hardware-derived domains with cross-domain sender loops."""
    from repro.hw import HwParams
    from repro.hw.pcie import Interconnect

    env = Environment()
    part = None
    if engine != "serial":
        plan = Interconnect(HwParams.pcie()).partition_plan()
        part = env.enable_partition(plan, use_partition=True)
        assert part is not None, "hw-derived plan must be usable"
        # Pin the mode explicitly so the measurement is what it says
        # it is, whatever the ambient REPRO_NO_WINDOW_BATCH hatch.
        part.batching = engine == "batched"
        part.threaded = False
    _build_workload(env, chains, racers, preempts,
                    domains=("host", "ic", "nic"), cross=cross)
    t0 = time.perf_counter()
    env.run(until=horizon_ns)
    wall = time.perf_counter() - t0
    point = {
        "events_logical": env._seq,
        "events_scheduled": env.events_scheduled,
        "events_dispatched": env.events_dispatched,
        "wall_s": round(wall, 4),
    }
    if part is not None:
        point["domain_switches"] = part.domain_switches
        point["cross_sends"] = part.cross_sends
        if engine == "batched":
            point["windows_batched"] = part.windows_batched
            point["events_batched"] = part.events_batched
            point["batch_solo"] = part.batch_solo
            point["batch_degrades"] = part.batch_degrades
    return point


def measure_partition(repeats: int = 3) -> dict:
    """Serial vs partitioned kernel on the domain-spread workload.

    Three engines, same workload: the serial kernel, the partitioned
    engine's exact-order merge (per-event global ordering, the
    byte-identity fallback), and its window-batched default (domains
    drain proven-independent safe windows without consulting each
    other). ``events_dispatched`` equality across all three is the hard
    ``--check`` gate -- they ran the identical workload or the bench is
    meaningless -- and the batched mode must reach
    :data:`PARTITION_SPEEDUP_FLOOR` (>= 1.0x serial).
    """
    for engine in ("serial", "exact", "batched"):  # warmup
        partition_kernel_point(engine, horizon_ns=200_000)
    # The speedups are *medians of paired ratios* over order-alternated
    # serial/batched pairs: machine-wide load drift inflates both walls
    # of an adjacent pair together (so the ratio survives noise that
    # makes best-of-N-vs-best-of-N flake across the 20%+ wall variance
    # observed on CI-class shared runners), and alternating which
    # engine runs first cancels the bias a monotone slowdown would
    # otherwise put on whichever engine always ran second. The exact
    # merge rides along in the first ``repeats`` rounds.
    pairs = 2 * repeats + 1
    serial_runs, exact_runs, part_runs = [], [], []
    for i in range(pairs):
        if i % 2 == 0:
            serial_runs.append(partition_kernel_point("serial"))
            part_runs.append(partition_kernel_point("batched"))
        else:
            part_runs.append(partition_kernel_point("batched"))
            serial_runs.append(partition_kernel_point("serial"))
        if i < repeats:
            exact_runs.append(partition_kernel_point("exact"))

    def _evps(run):
        return run["events_dispatched"] / run["wall_s"]

    def _median(values):
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    serial_best = max(_evps(r) for r in serial_runs)
    exact_best = max(_evps(r) for r in exact_runs)
    part_best = max(_evps(r) for r in part_runs)
    speedup = _median([_evps(p) / _evps(s)
                       for p, s in zip(part_runs, serial_runs)])
    exact_speedup = _median([_evps(e) / _evps(s)
                             for e, s in zip(exact_runs, serial_runs)])
    serial, exact, part = serial_runs[0], exact_runs[0], part_runs[0]
    return {
        "events_per_sec": round(part_best),
        "serial_events_per_sec": round(serial_best),
        "exact_events_per_sec": round(exact_best),
        "speedup_vs_serial": round(speedup, 3),
        "exact_speedup_vs_serial": round(exact_speedup, 3),
        "events_dispatched": part["events_dispatched"],
        "serial_events_dispatched": serial["events_dispatched"],
        "exact_events_dispatched": exact["events_dispatched"],
        "events_logical": part["events_logical"],
        "events_scheduled": part["events_scheduled"],
        "domain_switches": part["domain_switches"],
        "cross_sends": part["cross_sends"],
        "windows_batched": part["windows_batched"],
        "events_batched": part["events_batched"],
        "batch_solo": part["batch_solo"],
        "batch_degrades": part["batch_degrades"],
        "runs": part_runs,
        "exact_runs": exact_runs,
        "serial_runs": serial_runs,
    }


def timeline_kernel_point(with_timeline: bool,
                          horizon_ns: int = 2_000_000) -> dict:
    """One timeline-overhead bench run: the kernel microbench workload
    under a telemetry hub, with or without the timeline sampler."""
    from repro.obs import Telemetry, TimelineConfig
    config = (TimelineConfig(period_ns=TIMELINE_PERIOD_NS)
              if with_timeline else None)
    with Telemetry(timeline=config):
        env = Environment()
        _build_workload(env, 40, 40, 10)
        t0 = time.perf_counter()
        env.run(until=horizon_ns)
        wall = time.perf_counter() - t0
    return {
        "events_dispatched": env.events_dispatched,
        "events_scheduled": env.events_scheduled,
        "samples": env._timeline.ticks if env._timeline is not None else 0,
        "wall_s": round(wall, 4),
    }


def measure_timeline(repeats: int = 3) -> dict:
    """Timeline-sampler overhead on the kernel microbench workload.

    Self-relative: both sides run under a telemetry hub, one with the
    timeline sampler at a hot 5 us period and one without, so the ratio
    isolates the clock hook from the hub's own cost. The true ratio is
    ~1.0 -- well inside single-machine wall-clock noise -- so a single
    estimator sits within scheduler jitter of the 0.97 floor and
    flakes. The gated ratio is therefore the **max of two estimators
    with independent failure modes**: best-of-N vs best-of-N (the
    :func:`measure_kernel` approach; bests converge to the machine's
    unloaded speed but one outlier-free side can deflate the ratio) and
    the median of order-alternated paired ratios (robust to load drift
    but wide-tailed per pair). Noise deflates each independently, while
    a real sampler regression drags both down, so the max keeps the
    floor meaningful without flaking. Runs alternate order so drift
    cannot systematically favour one side; both estimators are recorded
    (``best_ratio``, ``paired_median``). The sampler schedules no
    events, so ``events_dispatched`` equality between the two sides is
    a hard ``--check`` gate.
    """
    timeline_kernel_point(False, horizon_ns=200_000)  # warmup
    timeline_kernel_point(True, horizon_ns=200_000)
    pairs = 2 * repeats + 1
    off_runs, on_runs = [], []
    for i in range(pairs):
        if i % 2 == 0:
            off_runs.append(timeline_kernel_point(False))
            on_runs.append(timeline_kernel_point(True))
        else:
            on_runs.append(timeline_kernel_point(True))
            off_runs.append(timeline_kernel_point(False))

    def _evps(run):
        return run["events_dispatched"] / run["wall_s"]

    def _median(values):
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    paired = _median([_evps(on) / _evps(off)
                      for on, off in zip(on_runs, off_runs)])
    on_best = max(_evps(r) for r in on_runs)
    off_best = max(_evps(r) for r in off_runs)
    on, off = on_runs[0], off_runs[0]
    best_ratio = on_best / off_best
    return {
        "overhead_vs_off": round(max(best_ratio, paired), 3),
        "best_ratio": round(best_ratio, 3),
        "paired_median": round(paired, 3),
        "events_per_sec": round(on_best),
        "off_events_per_sec": round(off_best),
        "period_ns": TIMELINE_PERIOD_NS,
        "samples": on["samples"],
        "events_dispatched": on["events_dispatched"],
        "off_events_dispatched": off["events_dispatched"],
        "runs": on_runs,
        "off_runs": off_runs,
    }


def measure_model_benches() -> dict:
    """Named end-to-end model benches with per-benchmark event counts.

    Small fixed-scale points (one Fig 5 ticks-on VM point, the
    reduced-scale Fig 4a FIFO point the golden digest pins) whose
    ``events_scheduled`` is deterministic -- the history shows exactly
    where event-reduction wins land or regress, per benchmark.
    """
    import random

    from repro.core import Placement, WaveOpts
    from repro.sched import FifoPolicy
    from repro.sched.experiment import run_sched_point
    from repro.sched.vm_experiment import run_vm_point
    from repro.workloads import RocksDbModel

    benches = {}

    counters: dict = {}
    t0 = time.perf_counter()
    run_vm_point(31, ticks=True, counters=counters)
    counters["wall_s"] = round(time.perf_counter() - t0, 4)
    benches["fig5_vm_ticks"] = counters

    counters = {}
    t0 = time.perf_counter()
    run_sched_point(Placement.NIC, WaveOpts.full(), 2, FifoPolicy,
                    lambda rng: RocksDbModel.fifo_mix(rng),
                    rate_per_sec=120_000.0, duration_ns=8_000_000.0,
                    warmup_ns=1_000_000.0, seed=1, counters=counters)
    counters["wall_s"] = round(time.perf_counter() - t0, 4)
    benches["fig4a_fifo_reduced"] = counters
    return benches


def measure_fig4a(jobs: Optional[int] = None) -> float:
    """Wall-clock seconds for the Fig 4a fast sweep."""
    from repro.bench import fig4_fifo
    t0 = time.perf_counter()
    fig4_fifo.run(fast=True, jobs=jobs)
    return time.perf_counter() - t0


def main(fast: bool = False, check: bool = False,
         out: str = "BENCH_perf.json", jobs: Optional[int] = None,
         repeats: int = 3) -> int:
    from repro.bench.parallel import resolve_jobs
    from repro.bench.trajectory import append_history, carry_history

    committed = None
    if check:
        # Prefer the output path (a re-run in place), else the
        # repo-committed artifact; fall back to the pre-PR constants.
        for path in (out, "BENCH_perf.json"):
            if os.path.exists(path):
                try:
                    with open(path) as fh:
                        committed = json.load(fh)
                    break
                except (OSError, ValueError):
                    continue

    print("kernel microbench (timeout chains + any_of racers + "
          "interrupts) ...", flush=True)
    kernel = measure_kernel(repeats=max(1, repeats))
    print(f"  events_scheduled={kernel['events_scheduled']:,} "
          f"best={kernel['events_per_sec']:,} ev/s", flush=True)

    print("partitioned kernel (3 domains, cross-domain senders) vs "
          "serial ...", flush=True)
    partition = measure_partition(repeats=max(1, repeats))
    print(f"  window-batched {partition['events_per_sec']:,} ev/s vs serial "
          f"{partition['serial_events_per_sec']:,} ev/s "
          f"({partition['speedup_vs_serial']:.2f}x; exact-order merge "
          f"{partition['exact_speedup_vs_serial']:.2f}x), "
          f"{partition['windows_batched']:,} windows, "
          f"{partition['batch_solo']:,} solo steps, "
          f"{partition['cross_sends']:,} cross sends", flush=True)

    print("timeline sampler (5 us period) vs telemetry-only ...",
          flush=True)
    timeline = measure_timeline(repeats=max(1, repeats))
    print(f"  sampling-on {timeline['events_per_sec']:,} ev/s vs off "
          f"{timeline['off_events_per_sec']:,} ev/s "
          f"({timeline['overhead_vs_off']:.2f}x), "
          f"{timeline['samples']:,} samples", flush=True)

    result = {
        "schema": "wave-repro-perf/2",
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "kernel": kernel,
        "kernel_partition": partition,
        "kernel_timeline": timeline,
        "pre_pr_baseline": PRE_PR_BASELINE,
        "kernel_speedup_vs_pre_pr": round(
            kernel["events_per_sec"]
            / PRE_PR_BASELINE["kernel_events_per_sec"], 3),
    }
    scheduled = kernel.get("events_scheduled")
    pre_scheduled = PRE_PR_BASELINE["kernel_events_scheduled"]
    if scheduled:
        reduction = 1.0 - scheduled / pre_scheduled
        result["kernel_events_reduction_vs_pre_pr"] = round(reduction, 3)
        print(f"  heap admissions {scheduled:,} vs pre-PR "
              f"{pre_scheduled:,} ({100 * reduction:+.1f}% reduction)",
              flush=True)

    if not fast:
        print("model benches (fig5 vm ticks, fig4a reduced) ...",
              flush=True)
        benches = measure_model_benches()
        for name, stats in sorted(benches.items()):
            print(f"  {name}: events_scheduled="
                  f"{stats.get('events_scheduled', 0):,} "
                  f"wall={stats.get('wall_s', 0):.2f}s", flush=True)
        result["benches"] = benches
        print("fig4a fast sweep, serial ...", flush=True)
        serial_wall = measure_fig4a(jobs=None)
        fig4a = {"serial_wall_s": round(serial_wall, 2)}
        print(f"  serial {serial_wall:.2f}s", flush=True)
        n_jobs = resolve_jobs(jobs if jobs is not None else -1)
        if n_jobs > 1:
            print(f"fig4a fast sweep, --jobs {n_jobs} ...", flush=True)
            par_wall = measure_fig4a(jobs=n_jobs)
            fig4a.update(jobs=n_jobs, parallel_wall_s=round(par_wall, 2),
                         parallel_speedup=round(serial_wall / par_wall, 2))
            print(f"  parallel {par_wall:.2f}s "
                  f"({serial_wall / par_wall:.2f}x)", flush=True)
        else:
            fig4a["jobs"] = n_jobs
            print("  single-CPU host: skipping the pool measurement",
                  flush=True)
        result["fig4a_fast"] = fig4a

    # Cross-run trajectory: extend the prior artifact's history (never
    # rewrite it) with this run, timestamped in UTC.
    timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    result["history"] = append_history(carry_history(out), result,
                                       timestamp)

    with open(out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out} ({len(result['history'])} history "
          f"{'entry' if len(result['history']) == 1 else 'entries'})")

    if check:
        committed_kernel = (committed or {}).get("kernel", {})
        base = committed_kernel.get("events_per_sec") \
            or PRE_PR_BASELINE["kernel_events_per_sec"]
        floor = REGRESSION_FLOOR * base
        got = kernel["events_per_sec"]
        if got < floor:
            print(f"PERF REGRESSION: kernel {got:,} ev/s < "
                  f"{floor:,.0f} (70% of committed {base:,})")
            return 1
        # Event-count gate: deterministic (no runner-speed noise), so
        # the tolerance is tight. A >10% creep in heap admissions means
        # an event-reduction mechanism stopped engaging.
        events_base = committed_kernel.get("events_scheduled")
        events_got = kernel.get("events_scheduled")
        if events_base and events_got:
            ceiling = EVENTS_CEILING * events_base
            if events_got > ceiling:
                print(f"PERF REGRESSION: kernel events_scheduled "
                      f"{events_got:,} > {ceiling:,.0f} (110% of "
                      f"committed {events_base:,})")
                return 1
        # Partitioned-kernel gates: dispatch-count equality is
        # deterministic and exact (all three engines ran the same
        # workload, or this bench proves nothing); the window-batched
        # speedup floor demands the batched default actually beats the
        # serial kernel.
        if (partition["events_dispatched"]
                != partition["serial_events_dispatched"]
                or partition["exact_events_dispatched"]
                != partition["serial_events_dispatched"]):
            print(f"PERF REGRESSION: dispatch counts diverged on the "
                  f"same workload: batched "
                  f"{partition['events_dispatched']:,}, exact "
                  f"{partition['exact_events_dispatched']:,}, serial "
                  f"{partition['serial_events_dispatched']:,}")
            return 1
        if partition["speedup_vs_serial"] < PARTITION_SPEEDUP_FLOOR:
            print(f"PERF REGRESSION: window-batched partitioned kernel "
                  f"at {partition['speedup_vs_serial']:.2f}x of serial "
                  f"< {PARTITION_SPEEDUP_FLOOR:.2f}x floor (batching "
                  f"must beat the serial kernel, not just bound the "
                  f"merge overhead)")
            return 1
        # Timeline-sampler gates: the passive clock hook schedules no
        # events (dispatch equality is exact) and must stay within
        # TIMELINE_OVERHEAD_FLOOR of the no-timeline hub even at the
        # bench's deliberately hot 5 us sampling period.
        if (timeline["events_dispatched"]
                != timeline["off_events_dispatched"]):
            print(f"PERF REGRESSION: timeline sampler changed the "
                  f"dispatch count: sampling-on "
                  f"{timeline['events_dispatched']:,} vs off "
                  f"{timeline['off_events_dispatched']:,} (the sampler "
                  f"must be a passive clock hook, not an event)")
            return 1
        if timeline["overhead_vs_off"] < TIMELINE_OVERHEAD_FLOOR:
            print(f"PERF REGRESSION: timeline sampling at "
                  f"{timeline['overhead_vs_off']:.2f}x of the "
                  f"no-timeline kernel < "
                  f"{TIMELINE_OVERHEAD_FLOOR:.2f}x floor "
                  f"({timeline['samples']:,} samples over the run)")
            return 1
        print(f"perf check OK: kernel {got:,} ev/s >= "
              f"{floor:,.0f} (70% of committed {base:,})"
              + (f", events_scheduled {events_got:,} <= "
                 f"{EVENTS_CEILING * events_base:,.0f}"
                 if events_base and events_got else "")
              + f", window-batched {partition['speedup_vs_serial']:.2f}x "
              f"of serial (exact merge "
              f"{partition['exact_speedup_vs_serial']:.2f}x) with equal "
              f"dispatch counts, timeline sampling "
              f"{timeline['overhead_vs_off']:.2f}x of off")
    return 0


if __name__ == "__main__":
    import sys
    argv = sys.argv[1:]
    raise SystemExit(main(
        fast="--fast" in argv, check="--check" in argv,
        out=next((argv[i + 1] for i, a in enumerate(argv) if a == "--out"),
                 "BENCH_perf.json"),
        jobs=next((int(argv[i + 1]) for i, a in enumerate(argv)
                   if a == "--jobs"), None),
        repeats=next((int(argv[i + 1]) for i, a in enumerate(argv)
                      if a == "--repeats"), 3)))
