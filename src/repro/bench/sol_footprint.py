"""Section 7.4.2's RocksDB effect: SOL shrinks DRAM by 79%.

Paper: ~102 GiB at startup -> ~21.3 GiB after 3 epochs; GET latency
stays at ~12 us median / ~31 us p99.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport
from repro.mem.experiment import (  # noqa: F401  (SLO_SPECS re-export)
    SLO_SPECS,
    run_footprint,
)

FAST_BYTES = 8 * 1024 ** 3


def run(fast: bool = True) -> ExperimentReport:
    """Run the experiment; returns a paper-vs-measured report."""
    result = run_footprint(epochs=3,
                           total_bytes=FAST_BYTES if fast else None,
                           get_samples=50_000 if fast else 300_000)
    rows = [
        ("DRAM at startup (GiB)", f"{result.start_gib:.1f}",
         "102" if not fast else "(scaled)"),
        ("DRAM after 3 epochs (GiB)", f"{result.end_gib:.1f}",
         "21.3" if not fast else "(scaled)"),
        ("reduction", f"{result.reduction_pct:.0f}%", "79%"),
        ("hot working set (GiB)", f"{result.hot_gib:.1f}", ""),
        ("DRAM hit fraction", f"{result.hit_fast_fraction:.4f}", ""),
        ("GET median (us)", f"{result.get_p50_us:.1f}", "12"),
        ("GET p99 (us)", f"{result.get_p99_us:.1f}", "31"),
    ]
    return ExperimentReport(
        experiment_id="sol-footprint",
        title="SOL's effect on RocksDB after 3 epochs (SmartNIC agent)",
        headers=("metric", "measured", "paper"),
        rows=rows,
    )


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
