"""Live sweep progress and stall detection for the process pool.

Workers send ``("start"|"done", point_index, pid, events,
timeline_samples)`` heartbeats
over a queue (see :mod:`repro.bench.parallel`); the parent folds them
into a :class:`SweepProgress`, which renders a stderr progress line
(points done/total, events/sec, per-worker status) and surfaces hung
points instead of letting a sweep wait silently.

Rendering modes (``REPRO_PROGRESS`` environment variable):

- ``0`` -- silent (stall warnings still print);
- ``1`` -- one line per completed point (CI-log friendly);
- ``live`` -- a single ``\\r``-rewritten status line;
- unset -- ``live`` when stderr is a tty, else a single summary line
  when the sweep finishes.

Progress is presentation only: nothing here feeds the metrics digest,
trace, or report, so a watched sweep stays byte-identical to a quiet
one. The structured counterpart is the ``sweep.worker.*`` metric family
kept by :func:`repro.bench.parallel.sweep_health`.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Optional, Tuple

#: Seconds a point may run without finishing before it is reported as a
#: possible stall (override with ``REPRO_STALL_S``). Sweep points are
#: seconds-long simulations; minutes-long is news.
DEFAULT_STALL_S = 300.0


def _fmt_events(events: float) -> str:
    if events >= 1e6:
        return f"{events / 1e6:.1f}M"
    if events >= 1e3:
        return f"{events / 1e3:.0f}k"
    return f"{events:.0f}"


def resolve_mode(stream) -> str:
    """Pick a rendering mode from ``REPRO_PROGRESS`` and the stream."""
    raw = os.environ.get("REPRO_PROGRESS", "").strip().lower()
    if raw in ("0", "off", "none"):
        return "off"
    if raw in ("1", "line", "lines"):
        return "line"
    if raw == "live":
        return "live"
    try:
        tty = stream.isatty()
    except Exception:
        tty = False
    return "live" if tty else "summary"


class SweepProgress:
    """Tracks one pool sweep: who is running what, and for how long."""

    def __init__(self, total: int, jobs: int,
                 labels: Optional[List[str]] = None,
                 stream=None, mode: Optional[str] = None,
                 stall_after_s: Optional[float] = None,
                 clock=time.monotonic):
        self.total = total
        self.jobs = jobs
        self.labels = labels or []
        self.stream = stream if stream is not None else sys.stderr
        self.mode = mode or resolve_mode(self.stream)
        if stall_after_s is None:
            stall_after_s = float(os.environ.get("REPRO_STALL_S",
                                                 DEFAULT_STALL_S))
        self.stall_after_s = stall_after_s
        self.clock = clock
        self.t0 = clock()
        self.done = 0
        self.events_total = 0
        self.samples_total = 0
        #: point index -> (worker slot, start time) for in-flight points.
        self.running: Dict[int, Tuple[int, float]] = {}
        #: point index -> worker slot, for every point ever started.
        self.point_worker: Dict[int, int] = {}
        self.stalled: List[int] = []
        self._slots: Dict[int, int] = {}     # pid -> stable worker slot
        self._live_dirty = False

    # -- heartbeat ingestion -------------------------------------------------

    def worker_slot(self, pid: int) -> int:
        """Stable small slot index for a worker pid (first-seen order)."""
        slot = self._slots.get(pid)
        if slot is None:
            slot = self._slots[pid] = len(self._slots)
        return slot

    def start(self, index: int, slot: int) -> None:
        self.running[index] = (slot, self.clock())
        self.point_worker[index] = slot
        if self.mode == "live":
            self._render_live()

    def finish(self, index: int, slot: int, events: int,
               samples: int = 0) -> None:
        started = self.running.pop(index, None)
        self.point_worker.setdefault(index, slot)
        self.done += 1
        self.events_total += events or 0
        self.samples_total += samples or 0
        if self.mode == "line":
            took = ""
            if started is not None:
                took = f", {self.clock() - started[1]:.1f}s"
            self._write(f"sweep [{self.done}/{self.total}] "
                        f"{self._label(index)} done "
                        f"(worker {slot}{took})\n")
        elif self.mode == "live":
            self._render_live()

    def tick(self) -> List[int]:
        """Poll for stalls; returns point indices newly flagged."""
        now = self.clock()
        fresh = []
        for index, (slot, since) in self.running.items():
            if index in self.stalled or now - since < self.stall_after_s:
                continue
            self.stalled.append(index)
            fresh.append(index)
            if self.mode != "off":
                self._clear_live()
                self._write(
                    f"sweep: point {self._label(index)} has been running "
                    f"for {now - since:.0f}s in worker {slot} -- "
                    f"possible stall (REPRO_STALL_S="
                    f"{self.stall_after_s:.0f})\n")
        if self.mode == "live":
            self._render_live()
        return fresh

    def close(self) -> None:
        """Final summary line (live line is replaced by it)."""
        self._clear_live()
        if self.mode == "off":
            return
        wall = max(self.clock() - self.t0, 1e-9)
        line = (f"sweep: {self.done}/{self.total} points, "
                f"{self.jobs} workers, {wall:.1f}s")
        if self.events_total:
            line += (f", {_fmt_events(self.events_total)} events "
                     f"({_fmt_events(self.events_total / wall)}/s)")
        if self.samples_total:
            line += (f", {_fmt_events(self.samples_total)} timeline "
                     f"samples")
        if self.stalled:
            line += f", {len(self.stalled)} stall warning(s)"
        self._write(line + "\n")

    # -- rendering ----------------------------------------------------------

    def _label(self, index: int) -> str:
        if index < len(self.labels) and self.labels[index]:
            return self.labels[index]
        return f"#{index}"

    def _write(self, text: str) -> None:
        try:
            self.stream.write(text)
            self.stream.flush()
        except Exception:  # a closed/odd stream must never kill a sweep
            pass

    def status_line(self) -> str:
        """The live one-liner: done/total, events/sec, worker status."""
        wall = max(self.clock() - self.t0, 1e-9)
        parts = [f"sweep {self.done}/{self.total}"]
        if self.events_total:
            parts.append(f"{_fmt_events(self.events_total / wall)} ev/s")
        now = self.clock()
        busy = []
        for index, (slot, since) in sorted(self.running.items(),
                                           key=lambda kv: kv[1][0]):
            busy.append(f"w{slot}:{self._label(index)}"
                        f"({now - since:.0f}s)")
        if busy:
            parts.append(" ".join(busy))
        line = "  ".join(parts)
        return line[:118] + ".." if len(line) > 120 else line

    def _render_live(self) -> None:
        self._write("\r\x1b[2K" + self.status_line())
        self._live_dirty = True

    def _clear_live(self) -> None:
        if self._live_dirty:
            self._write("\r\x1b[2K")
            self._live_dirty = False
