"""Memory policy comparison: SOL vs the CLOCK baseline (section 4.2).

Not a paper table -- an ablation quantifying why SOL's adaptive scan
frequencies matter: "SOL determines the optimal frequency to scan each
batch's access bits as each scan requires (1) flushing the TLB and (2)
policy computation."
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport
from repro.hw import HwParams, Machine
from repro.mem.experiment import SLO_SPECS  # noqa: F401  (timeline CLI)
from repro.mem import (
    AddressSpace,
    EPOCH_NS,
    MemAgentPlacement,
    MemoryAgent,
    TieredMemory,
)
from repro.mem.clock import ClockPolicy
from repro.sim import Environment

FAST_BYTES = 4 * 1024 ** 3
FULL_BYTES = 32 * 1024 ** 3


def _run_policy(policy_name: str, total_bytes: int, epochs: float,
                n_cores: int = 16, seed: int = 0):
    env = Environment()
    machine = Machine(env, HwParams.pcie())
    space = AddressSpace(total_bytes=total_bytes, seed=seed)
    tiers = TieredMemory(space)
    policy = ClockPolicy(space, seed=seed) if policy_name == "clock" else None
    agent = MemoryAgent(env, machine, space, tiers,
                        MemAgentPlacement.NIC, n_cores, policy=policy,
                        seed=seed)
    agent.start()
    env.run(until=epochs * EPOCH_NS)
    return agent, tiers, space


def run(fast: bool = True) -> ExperimentReport:
    """Run the experiment; returns a paper-vs-measured report."""
    total_bytes = FAST_BYTES if fast else FULL_BYTES
    epochs = 1.5 if fast else 3.0
    rows = []
    for name in ("sol", "clock"):
        agent, tiers, space = _run_policy(name, total_bytes, epochs)
        scanner = agent.policy.scanner
        duration = agent.steady_state_duration_ms()
        window_s = epochs * EPOCH_NS / 1e9
        rows.append((name,
                     f"{duration:,.0f}",
                     f"{scanner.tlb_flushes / window_s:,.0f}",
                     f"{tiers.fast_gib:.2f}",
                     f"{tiers.hit_fast_fraction():.4f}"))
    return ExperimentReport(
        experiment_id="ablation-mem-policy",
        title="SOL vs CLOCK baseline (16 SmartNIC cores)",
        headers=("policy", "iteration (ms)", "TLB flushes/s",
                 "DRAM (GiB)", "hit fraction"),
        rows=rows,
        notes="CLOCK sweeps every batch every period: comparable "
              "placement quality but far more scanning overhead -- the "
              "cost SOL's Thompson-sampled frequencies avoid.",
    )


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
