"""Ablations of Wave's design choices (beyond the paper's own tables).

Three studies the paper motivates but does not tabulate:

- **Interconnect generation** (section 5.2's outlook): the same Wave-16
  FIFO deployment over PCIe, CXL (coherent, PCIe-physical), and UPI
  (coherent, socket-to-socket).
- **Idle re-check period**: the parked host core's slot re-check is the
  safety net of the prestage protocol; too slow costs latency on
  prestage misses, too fast burns PCIe reads.
- **Wakeup protocol**: the parked-flag sleep/wakeup optimization vs
  unconditionally raising an MSI-X per commit.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List

from repro.bench.reporting import ExperimentReport
from repro.core import Placement, WaveOpts
from repro.ghost import SchedCosts
from repro.hw import HwParams
from repro.sched import FifoPolicy
from repro.sched.experiment import (
    run_sched_point,
    saturation_throughput,
    sweep_load,
)
from repro.workloads import RocksDbModel

P99_LIMIT_NS = 300_000.0

INTERCONNECTS = (
    ("PCIe (Mount Evans)", HwParams.pcie),
    ("CXL (coherent, PCIe phys)", HwParams.cxl),
    ("UPI (coherent, socket)", HwParams.upi),
)


def _saturation(params: HwParams, rates, duration, costs=None,
                jobs=None) -> float:
    results = sweep_load(
        Placement.NIC, WaveOpts.full(), 16, FifoPolicy,
        RocksDbModel.fifo_mix, rates,
        duration_ns=duration, warmup_ns=duration // 5, params=params,
        costs=costs, jobs=jobs)
    return saturation_throughput(results, P99_LIMIT_NS)


def run_interconnects(fast: bool = True, jobs: int = None) -> ExperimentReport:
    rates = [760_000, 830_000, 880_000, 920_000, 960_000] if fast else \
        [720_000, 780_000, 830_000, 870_000, 900_000, 930_000, 960_000,
         990_000]
    duration = 25_000_000 if fast else 45_000_000
    rows = []
    baseline = None
    for name, factory in INTERCONNECTS:
        sat = _saturation(factory(), rates, duration, jobs=jobs)
        if baseline is None:
            baseline = sat
        rows.append((name, f"{sat:,.0f}",
                     f"{100 * (sat / baseline - 1):+.1f}%"))
    return ExperimentReport(
        experiment_id="ablation-interconnect",
        title="Wave-16 FIFO saturation by interconnect generation",
        headers=("interconnect", "saturation", "vs PCIe"),
        rows=rows,
        notes="Coherent interconnects remove the clflush protocol and "
              "shrink read fills; section 5.2 predicts modest gains "
              "because prestage+prefetch already hide most of PCIe.",
    )


def run_idle_recheck(fast: bool = True, jobs: int = None) -> ExperimentReport:
    periods = (1_000.0, 5_000.0, 20_000.0, 100_000.0)
    rate = 700_000
    duration = 25_000_000 if fast else 45_000_000
    from repro.bench.parallel import PointSpec, run_points
    results = run_points(
        [PointSpec(run_sched_point,
                   (Placement.NIC, WaveOpts.full(), 16, FifoPolicy,
                    RocksDbModel.fifo_mix, rate),
                   dict(duration_ns=duration, warmup_ns=duration // 5,
                        costs=SchedCosts(idle_recheck=period)))
         for period in periods],
        jobs=jobs)
    rows = []
    for period, result in zip(periods, results):
        rows.append((f"{period / 1000:.0f} us", f"{result.get_p99_us:.0f}",
                     f"{result.achieved_rate:,.0f}"))
    return ExperimentReport(
        experiment_id="ablation-idle-recheck",
        title=f"Idle re-check period at {rate:,} req/s (GET p99, us)",
        headers=("re-check period", "p99 (us)", "achieved"),
        rows=rows,
        notes="The re-check is the prestage protocol's safety net: "
              "rarely exercised, so even 20x slower re-checks barely "
              "move the tail until they dominate wakeups.",
    )


def run_interconnect_microbench(fast: bool = True) -> ExperimentReport:
    """Primitive costs across the three interconnects."""
    rows = []
    for name, factory in INTERCONNECTS:
        params = factory()
        rows.append((name, params.mmio_read_uc, params.mmio_write_uc,
                     params.mmio_write_visibility,
                     "yes" if params.coherent else "no"))
    return ExperimentReport(
        experiment_id="ablation-interconnect-primitives",
        title="Interconnect primitives (ns)",
        headers=("interconnect", "read", "write", "visibility", "coherent"),
        rows=rows,
    )


def run_payload_crossover(fast: bool = True) -> ExperimentReport:
    """Section 4.3's MMIO-vs-DMA payload transport crossover."""
    from repro.rpc.hybrid import (crossover_bytes, dma_payload_cost,
                                  mmio_payload_cost)
    rows = []
    for name, factory in INTERCONNECTS:
        params = factory()
        rows.append((name,
                     crossover_bytes(params, "latency"),
                     crossover_bytes(params, "cpu")))
    sizes = (64, 256, 1024, 4096, 65536)
    detail = []
    pcie = HwParams.pcie()
    for size in sizes:
        mmio = mmio_payload_cost(pcie, size)
        dma = dma_payload_cost(pcie, size)
        detail.append(f"{size}B: mmio {mmio.latency_ns:,.0f}ns "
                      f"vs dma {dma.latency_ns:,.0f}ns")
    return ExperimentReport(
        experiment_id="ablation-payload-crossover",
        title="MMIO vs DMA payload transport crossover (bytes)",
        headers=("interconnect", "latency crossover", "cpu crossover"),
        rows=rows,
        notes="PCIe latency detail: " + "; ".join(detail)
              + ". Small RPCs (section 7.3) sit left of the crossover, "
                "justifying the paper's MMIO choice.",
    )


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run_interconnect_microbench(fast=False).render())
    print()
    print(run_payload_crossover(fast=False).render())
    print()
    print(run_interconnects(fast=False).render())
    print()
    print(run_idle_recheck(fast=False).render())


if __name__ == "__main__":
    main()
