"""Process-pool execution of independent simulation points.

Every experiment sweep in this repo is a list of *independent* load
points: each ``run_sched_point``/``run_rpc_point``-style call builds its
own :class:`~repro.sim.Environment` with its own seeds, so the points
can run in any order -- or concurrently -- without changing a single
result. This module fans a list of picklable :class:`PointSpec`\\ s out
across a ``multiprocessing`` pool and merges the results back **in
deterministic submission order**, so a sweep at ``--jobs 4`` is
byte-identical to the same sweep at ``--jobs 1``.

Telemetry is parallel-safe: when a hub is installed (``repro run
--trace/--metrics/--profile``, ``repro report``), every pool worker
installs a fresh per-process hub built from the parent's
:meth:`~repro.obs.spans.Telemetry.shard_config`, runs its point fully
instrumented, and returns a picklable
:class:`~repro.obs.shard.TelemetryShard` alongside the point result.
The parent absorbs shards in submission order, renumbering run
indices/labels, so the merged metrics dump, Perfetto trace, and run
report are byte-identical to a serial instrumented sweep. Worker
identity never reaches an exported artifact; it lives on the merged
run's ``worker`` attribute and in the ``sweep.worker.*`` health metrics
(:func:`sweep_health`).

While a pool sweep runs, workers send start/done heartbeats that drive
a stderr progress line (points done/total, events/sec, per-worker
status -- see :mod:`repro.bench.progress`) and stall detection: a point
running past ``REPRO_STALL_S`` (default 300 s) is reported instead of
hanging the sweep silently.

Guard rails:

- ``jobs <= 1`` or a single point: no pool, no overhead; instrumented
  runs feed the parent hub directly (the classic serial path).
- Unpicklable specs (e.g. a closure factory or a ``request_sink``
  list): the pool would fail mid-flight, so they are detected up front
  and the sweep degrades to serial -- **loudly**: a one-time stderr
  warning plus a ``sweep.fallback`` counter, because silently losing
  ``--jobs`` hides real wall-clock regressions.

Workers prefer the ``fork`` start method where available (cheap, and
inherits the imported modules); elsewhere the platform default is used.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import queue as queue_mod
import sys
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Parent-side poll period while waiting on the pool (heartbeat drain,
#: progress redraw, stall checks).
_POLL_S = 0.2


@dataclasses.dataclass(frozen=True)
class PointSpec:
    """One independent simulation point: a picklable deferred call.

    ``fn`` must be importable by reference (a module-level function,
    class, or classmethod) and its arguments plain data -- which every
    ``run_*_point`` entry point in this repo satisfies. ``label`` is
    presentation only (the progress line); it never affects results or
    telemetry artifacts.
    """

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    label: str = ""

    def __call__(self) -> Any:
        return self.fn(*self.args, **self.kwargs)

    def display(self) -> str:
        if self.label:
            return self.label
        return getattr(self.fn, "__name__", "point")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 -> 1, negative -> all cores."""
    if not jobs:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def _picklable(specs: List[PointSpec]) -> bool:
    try:
        pickle.dumps(specs)
        return True
    except Exception:
        return False


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover -- non-fork platforms
        return multiprocessing.get_context()


# -- sweep health (structured progress/fallback metrics) ---------------------

#: Registry behind :func:`sweep_health`. Deliberately separate from any
#: telemetry hub: worker identity and fallback events are host-run
#: facts, and folding them into a run's registry would break the
#: ``--jobs 1`` vs ``--jobs N`` digest-parity contract.
_HEALTH = MetricsRegistry()

_warned_unpicklable = False


def sweep_health() -> MetricsRegistry:
    """The process-wide ``sweep.*`` metric family: pool runs, per-worker
    point/heartbeat/event counts, stall and fallback counters."""
    return _HEALTH


def reset_sweep_health() -> MetricsRegistry:
    """Swap in a fresh health registry (tests); returns the new one."""
    global _HEALTH
    _HEALTH = MetricsRegistry()
    return _HEALTH


def _note_unpicklable_fallback(n_points: int) -> None:
    global _warned_unpicklable
    _HEALTH.counter("sweep.fallback", reason="unpicklable").incr()
    if not _warned_unpicklable:
        _warned_unpicklable = True
        print("repro.bench.parallel: point specs are not picklable; "
              f"running {n_points} point(s) serially (--jobs ignored). "
              "Pass module-level callables and plain-data arguments to "
              "keep the process pool available.", file=sys.stderr)


# -- worker side -------------------------------------------------------------

_WORKER_HB = None
_WORKER_TEL_CFG = None


def _init_worker(hb_queue, tel_config) -> None:
    """Pool initializer: stash the heartbeat queue + telemetry config.

    A forked worker also inherits the parent's *installed* hub; feeding
    it would silently discard telemetry (the copy never returns), so it
    is cleared here and replaced per point in :func:`_run_spec_sharded`.
    """
    global _WORKER_HB, _WORKER_TEL_CFG
    _WORKER_HB = hb_queue
    _WORKER_TEL_CFG = tel_config
    from repro.sim import core as sim_core
    sim_core.set_default_telemetry(None)


def _heartbeat(kind: str, index: int, events: int,
               samples: int = 0) -> None:
    if _WORKER_HB is None:
        return
    try:
        _WORKER_HB.put((kind, index, os.getpid(), events, samples))
    except Exception:  # a broken channel must never fail the point
        pass


def _run_spec_sharded(item: Tuple[int, PointSpec]):
    """Worker entry: run one point, instrumented when configured.

    Returns ``(result, shard_or_None)``; the shard carries everything a
    fresh per-process hub collected for this point.
    """
    index, spec = item
    _heartbeat("start", index, 0)
    if _WORKER_TEL_CFG is None:
        result = spec()
        _heartbeat("done", index, 0)
        return result, None
    from repro.obs.spans import Telemetry
    hub = Telemetry.from_shard_config(_WORKER_TEL_CFG)
    hub.install()
    try:
        result = spec()
    finally:
        hub.uninstall()
    shard = hub.shard()
    _heartbeat("done", index, shard.events_scheduled,
               shard.timeline_samples)
    return result, shard


# -- parent side -------------------------------------------------------------

def _drain_heartbeats(hb_queue, progress, final: bool = False) -> None:
    """Absorb queued worker heartbeats into progress + health metrics.

    ``final`` is set on the post-``pool.map`` drain: results arrive on a
    different pipe than heartbeats, so the last "done" heartbeat can
    still be in flight when the map completes. The final drain keeps
    polling (briefly, bounded) until every point's heartbeat has been
    accounted, so per-worker point counts never undercount.
    """
    deadline = time.monotonic() + 2.0
    while True:
        try:
            kind, index, pid, events, samples = hb_queue.get_nowait()
        except queue_mod.Empty:
            if (final and progress.done < progress.total
                    and time.monotonic() < deadline):
                time.sleep(0.005)
                continue
            return
        except (OSError, EOFError):  # pragma: no cover -- pool teardown
            return
        slot = progress.worker_slot(pid)
        _HEALTH.counter("sweep.worker.heartbeats", worker=str(slot)).incr()
        if kind == "start":
            progress.start(index, slot)
        else:
            progress.finish(index, slot, events, samples)
            _HEALTH.counter("sweep.worker.points", worker=str(slot)).incr()
            if events:
                _HEALTH.counter("sweep.worker.events",
                                worker=str(slot)).incr(events)
            if samples:
                _HEALTH.counter("sweep.worker.timeline_samples",
                                worker=str(slot)).incr(samples)


def run_points(specs: Iterable[PointSpec],
               jobs: Optional[int] = None) -> List[Any]:
    """Run every spec; results in submission order regardless of which
    worker finishes first (``pool.map`` keys results by input index, so
    ``ExperimentReport`` rows can never depend on completion order)."""
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return [spec() for spec in specs]
    if not _picklable(specs):
        _note_unpicklable_fallback(len(specs))
        return [spec() for spec in specs]
    from repro.sim.core import default_telemetry
    hub = default_telemetry()
    tel_cfg = hub.shard_config() if hub is not None else None

    from repro.bench.progress import SweepProgress
    ctx = _pool_context()
    hb_queue = ctx.Queue()
    n_workers = min(jobs, len(specs))
    progress = SweepProgress(total=len(specs), jobs=n_workers,
                             labels=[spec.display() for spec in specs])
    _HEALTH.counter("sweep.pool.runs").incr()
    _HEALTH.gauge("sweep.pool.jobs").set(n_workers)
    try:
        with ctx.Pool(processes=n_workers, initializer=_init_worker,
                      initargs=(hb_queue, tel_cfg)) as pool:
            # chunksize=1: points are seconds-long sims, so scheduling
            # granularity beats batching.
            pending = pool.map_async(_run_spec_sharded,
                                     list(enumerate(specs)), chunksize=1)
            while True:
                pending.wait(_POLL_S)
                _drain_heartbeats(hb_queue, progress)
                for _ in progress.tick():
                    _HEALTH.counter("sweep.point.stalls").incr()
                if pending.ready():
                    break
            pairs = pending.get()
        _drain_heartbeats(hb_queue, progress, final=True)
    finally:
        progress.close()

    results = []
    for index, (result, shard) in enumerate(pairs):
        results.append(result)
        if shard is not None and hub is not None:
            hub.absorb(shard, worker=progress.point_worker.get(index))
    return results


def parallel_map(fn: Callable[..., Any], arg_tuples: Iterable[Tuple],
                 jobs: Optional[int] = None, **common_kwargs) -> List[Any]:
    """``run_points`` sugar: one spec per positional-args tuple, all
    sharing ``common_kwargs``."""
    return run_points(
        [PointSpec(fn, tuple(args), dict(common_kwargs))
         for args in arg_tuples],
        jobs=jobs)
