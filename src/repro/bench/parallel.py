"""Process-pool execution of independent simulation points.

Every experiment sweep in this repo is a list of *independent* load
points: each ``run_sched_point``/``run_rpc_point``-style call builds its
own :class:`~repro.sim.Environment` with its own seeds, so the points
can run in any order -- or concurrently -- without changing a single
result. This module fans a list of picklable :class:`PointSpec`\\ s out
across a ``multiprocessing`` pool and merges the results back **in
deterministic submission order**, so a sweep at ``--jobs 4`` is
byte-identical to the same sweep at ``--jobs 1``.

Guard rails (each silently degrades to the serial path):

- ``jobs <= 1`` or a single point: no pool, no overhead.
- A globally installed telemetry hub (``repro run --trace/--metrics``):
  child processes cannot feed the parent's hub, so instrumented runs
  stay single-process to keep traces complete.
- Unpicklable specs (e.g. a closure factory or a ``request_sink``
  list): the pool would fail mid-flight, so they are detected up front.

Workers prefer the ``fork`` start method where available (cheap, and
inherits the imported modules); elsewhere the platform default is used.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class PointSpec:
    """One independent simulation point: a picklable deferred call.

    ``fn`` must be importable by reference (a module-level function,
    class, or classmethod) and its arguments plain data -- which every
    ``run_*_point`` entry point in this repo satisfies.
    """

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __call__(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def _call_spec(spec: PointSpec) -> Any:
    """Top-level worker entry (must itself be picklable)."""
    return spec()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 -> 1, negative -> all cores."""
    if not jobs:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def _picklable(specs: List[PointSpec]) -> bool:
    try:
        pickle.dumps(specs)
        return True
    except Exception:
        return False


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover -- non-fork platforms
        return multiprocessing.get_context()


def run_points(specs: Iterable[PointSpec],
               jobs: Optional[int] = None) -> List[Any]:
    """Run every spec; results in submission order regardless of which
    worker finishes first (``pool.map`` keys results by input index, so
    ``ExperimentReport`` rows can never depend on completion order)."""
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return [spec() for spec in specs]
    from repro.sim.core import default_telemetry
    if default_telemetry() is not None:
        return [spec() for spec in specs]
    if not _picklable(specs):
        return [spec() for spec in specs]
    ctx = _pool_context()
    with ctx.Pool(processes=min(jobs, len(specs))) as pool:
        # chunksize=1: points are seconds-long sims, so scheduling
        # granularity beats batching.
        return pool.map(_call_spec, specs, chunksize=1)


def parallel_map(fn: Callable[..., Any], arg_tuples: Iterable[Tuple],
                 jobs: Optional[int] = None, **common_kwargs) -> List[Any]:
    """``run_points`` sugar: one spec per positional-args tuple, all
    sharing ``common_kwargs``."""
    return run_points(
        [PointSpec(fn, tuple(args), dict(common_kwargs))
         for args in arg_tuples],
        jobs=jobs)
