"""Fig 4b: Shinjuku scheduling of the dispersive RocksDB mix.

99.5% 10 us GETs + 0.5% 10 ms RANGEs, 30 us preemption slice. Paper:
Wave-15 saturates 7.6% below On-Host (no prefetch benefit on the
preemption path), Wave-16 1.9% above; tails ~5 us higher for Wave-15.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport
from repro.core import Placement, WaveOpts
from repro.sched import ShinjukuPolicy
from repro.sched.experiment import (  # noqa: F401  (SLO_SPECS re-export)
    SLO_SPECS,
    saturation_by_backlog,
    sweep_load,
)
from repro.workloads import RocksDbModel

SCENARIOS = (
    ("On-Host", Placement.HOST, 15),
    ("Wave-15", Placement.NIC, 15),
    ("Wave-16", Placement.NIC, 16),
)
PAPER_VS_ONHOST = {"On-Host": 0.0, "Wave-15": -7.6, "Wave-16": +1.9}

FAST_RATES = [190_000, 205_000, 218_000, 230_000, 240_000, 248_000]
FULL_RATES = [160_000, 180_000, 195_000, 208_000, 218_000, 227_000,
              234_000, 241_000, 248_000]


def sweep(placement, cores, rates, duration_ns, warmup_ns, seed=1,
          jobs=None):
    # Factories passed by reference so the specs pickle for --jobs.
    return sweep_load(placement, WaveOpts.full(), cores, ShinjukuPolicy,
                      RocksDbModel.shinjuku_mix, rates,
                      duration_ns=duration_ns, warmup_ns=warmup_ns,
                      seed=seed, jobs=jobs)


def run(fast: bool = True, jobs: int = None) -> ExperimentReport:
    """Run the experiment; returns a paper-vs-measured report."""
    rates = FAST_RATES if fast else FULL_RATES
    duration = 80_000_000 if fast else 100_000_000
    warmup = duration // 4
    sats, curves = {}, {}
    for name, placement, cores in SCENARIOS:
        curves[name] = sweep(placement, cores, rates, duration, warmup,
                             jobs=jobs)
        sats[name] = saturation_by_backlog(curves[name],
                                           backlog_limit=3 * cores)
    rows = []
    for name, _, cores in SCENARIOS:
        delta = 100.0 * (sats[name] / sats["On-Host"] - 1.0)
        preempts = curves[name][-2].preemptions
        rows.append((name, cores, f"{sats[name]:,.0f}", f"{delta:+.1f}%",
                     f"{PAPER_VS_ONHOST[name]:+.1f}%", preempts))
    return ExperimentReport(
        experiment_id="fig4b",
        title="Shinjuku (99.5% GET / 0.5% RANGE): saturation vs On-Host",
        headers=("scenario", "host cores", "saturation", "vs on-host",
                 "paper", "preemptions"),
        rows=rows,
        notes="Saturation = highest throughput with a stable run-queue "
              "backlog; preemption MSI-X costs hit Wave hardest.",
    )


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
