"""Shared result reporting for the benchmark harness."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence


@dataclasses.dataclass
class ExperimentReport:
    """Paper-vs-measured rows for one table or figure."""

    experiment_id: str            #: e.g. "table2", "fig4a"
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    notes: str = ""

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} ==",
                 render_table(self.headers, self.rows)]
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def row_map(self, key_column: int = 0) -> Dict[Any, Sequence[Any]]:
        """Index rows by one column for assertions."""
        return {row[key_column]: row for row in self.rows}


def render_table(headers: Sequence[str], rows: List[Sequence[Any]]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            return f"{value:,.2f}".rstrip("0").rstrip(".")
        return str(value)

    table = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in table)) if table else len(h)
              for i, h in enumerate(headers)]
    out = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    out.append("  ".join("-" * w for w in widths))
    for row in table:
        out.append("  ".join(cell.rjust(widths[i]) if _numericish(cell)
                             else cell.ljust(widths[i])
                             for i, cell in enumerate(row)))
    return "\n".join(out)


def _numericish(cell: str) -> bool:
    return bool(cell) and (cell[0].isdigit() or cell[0] in "+-.")


def write_csv(path: str, headers: Sequence[str],
              rows: List[Sequence[Any]]) -> None:
    """Dump a report's rows as CSV (for external plotting)."""
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)


def pct_delta(measured: float, paper: float) -> float:
    """Signed % difference of measured vs paper."""
    if paper == 0:
        return float("nan")
    return 100.0 * (measured - paper) / paper
