"""Table 2: hardware microbenchmarks, measured through the simulator.

Each primitive is exercised the way real microbenchmark code would use
it (e.g. MSI-X end-to-end is a live simulation of send -> wire ->
handler), so the reported numbers are measurements of the models, not
echoes of the constants.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport, pct_delta
from repro.hw import HwParams, Machine, PteType
from repro.sim import Environment

PAPER = {
    "Host MMIO 64-bit Read (Uncacheable)": 750.0,
    "Host MMIO 64-bit Write (Uncacheable)": 50.0,
    "MSI-X Send (Register Write)": 70.0,
    "MSI-X Send (Ioctl + Register Write)": 340.0,
    "MSI-X Receive": 350.0,
    "MSI-X End-to-End": 1600.0,
}


def _measure(machine: Machine) -> dict:
    link = machine.interconnect
    env = machine.env
    uc = link.host_path(PteType.UC)
    measured = {
        "Host MMIO 64-bit Read (Uncacheable)":
            uc.read_words(0, 1, env.now),
        "Host MMIO 64-bit Write (Uncacheable)":
            uc.write_words(0, 1),
        "MSI-X Send (Register Write)": link.msix_send(via_ioctl=False),
        "MSI-X Send (Ioctl + Register Write)": link.msix_send(True),
        "MSI-X Receive": link.msix_receive(),
    }
    # End-to-end: actually deliver one interrupt through the simulator.
    start = env.now
    send_cost, delivery = machine.nic.raise_msix(via_ioctl=True)
    env.run(until=delivery)
    measured["MSI-X End-to-End"] = (env.now - start) + link.msix_receive()
    return measured


def run(fast: bool = True) -> ExperimentReport:
    """Run the experiment; returns a paper-vs-measured report."""
    env = Environment()
    machine = Machine(env, HwParams.pcie())
    measured = _measure(machine)
    rows = []
    for name, paper in PAPER.items():
        got = measured[name]
        rows.append((name, paper, round(got, 1),
                     f"{pct_delta(got, paper):+.1f}%"))
    return ExperimentReport(
        experiment_id="table2",
        title="Hardware microbenchmarks (ns)",
        headers=("operation", "paper", "measured", "delta"),
        rows=rows,
        notes="Table 2 values are calibration inputs; this run verifies "
              "they survive composition through the simulator.",
    )


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
