"""Table 3: scheduling microbenchmarks.

Row 1 (open a decision + MSI-X) composes the agent's decision-write
primitives; rows 2/4 (context-switch overhead) run a single-core
deep-queue FIFO simulation five times and report the range of medians,
exactly how the paper measured it.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.bench.reporting import ExperimentReport
from repro.core import Placement, WaveChannel, WaveOpts
from repro.ghost import GhostAgent, GhostKernel, GhostTask
from repro.hw import HwParams, Machine, PteType
from repro.sched import FifoPolicy
from repro.sched.experiment import SLO_SPECS  # noqa: F401  (timeline CLI)
from repro.sim import Environment

PAPER_RANGES = {
    "wave open+msix (baseline)": (1013, 1013),
    "wave open+msix (+nic-wb)": (426, 426),
    "wave ctx (baseline)": (13310, 13530),
    "wave ctx (+nic-wb)": (9940, 10160),
    "wave ctx (+host-wc/wt)": (6100, 6910),
    "wave ctx (+prestage/prefetch)": (3320, 4040),
    "ghost open+ipi": (770, 770),
    "ghost ctx (baseline)": (4380, 4990),
    "ghost ctx (+prestage)": (2350, 3260),
}

WAVE_CTX_ROWS = [
    ("wave ctx (baseline)", WaveOpts.baseline()),
    ("wave ctx (+nic-wb)", WaveOpts.nic_wb_only()),
    ("wave ctx (+host-wc/wt)", WaveOpts.wc_wt()),
    ("wave ctx (+prestage/prefetch)", WaveOpts.full()),
]
GHOST_CTX_ROWS = [
    ("ghost ctx (baseline)",
     WaveOpts(nic_wb=True, host_wc_wt=True, prestage=False, prefetch=False)),
    ("ghost ctx (+prestage)", WaveOpts.full()),
]


def measure_ctx_median(placement: Placement, opts: WaveOpts, seed: int,
                       tasks: int) -> float:
    """Median inter-task switch overhead on one deep-queued core."""
    env = Environment()
    machine = Machine(env, HwParams.pcie())
    channel = WaveChannel(machine, placement, opts, name="t3")
    kernel = GhostKernel(channel, core_ids=[0], rng=random.Random(seed),
                         record_switch_overhead=True)
    agent = GhostAgent(channel, FifoPolicy(), [0])
    agent.start()
    kernel.start()

    def feeder():
        for _ in range(tasks):
            yield from kernel.submit(GhostTask(service_ns=10_000))

    env.process(feeder())
    env.run(until=tasks * 40_000)
    return kernel.switch_overhead.p50


def measure_ctx_range(placement: Placement, opts: WaveOpts,
                      repeats: int, tasks: int,
                      jobs: int = None) -> Tuple[float, float]:
    from repro.bench.parallel import parallel_map
    medians = parallel_map(
        measure_ctx_median,
        [(placement, opts, seed, tasks) for seed in range(repeats)],
        jobs=jobs)
    return min(medians), max(medians)


def measure_open_decision(nic_pte: PteType) -> float:
    """Agent opens one decision and sends an ioctl MSI-X."""
    env = Environment()
    machine = Machine(env, HwParams.pcie())
    link = machine.interconnect
    channel = WaveChannel(machine, Placement.NIC, name="t3r1")
    path = link.nic_path(nic_pte)
    return (path.write_words(0, channel.entry_words + 1)
            + link.msix_send(via_ioctl=True))


def run(fast: bool = True, jobs: int = None) -> ExperimentReport:
    """Run the experiment; returns a paper-vs-measured report."""
    repeats = 3 if fast else 5
    tasks = 120 if fast else 300
    rows = []

    def add(name, lo, hi):
        plo, phi = PAPER_RANGES[name]
        paper = f"{plo:,.0f}" if plo == phi else f"{plo:,.0f}-{phi:,.0f}"
        got = f"{lo:,.0f}" if round(lo) == round(hi) else f"{lo:,.0f}-{hi:,.0f}"
        mid, pmid = (lo + hi) / 2, (plo + phi) / 2
        rows.append((name, paper, got, f"{100 * (mid / pmid - 1):+.0f}%"))

    open_base = measure_open_decision(PteType.UC)
    add("wave open+msix (baseline)", open_base, open_base)
    open_wb = measure_open_decision(PteType.WB)
    add("wave open+msix (+nic-wb)", open_wb, open_wb)
    for name, opts in WAVE_CTX_ROWS:
        lo, hi = measure_ctx_range(Placement.NIC, opts, repeats, tasks,
                                   jobs=jobs)
        add(name, lo, hi)

    env = Environment()
    machine = Machine(env, HwParams.pcie())
    channel = WaveChannel(machine, Placement.HOST, name="t3r3")
    shm = machine.interconnect.host_local_path()
    open_host = (shm.write_words(0, channel.entry_words + 1)
                 + machine.params.host_ipi_send)
    add("ghost open+ipi", open_host, open_host)
    for name, opts in GHOST_CTX_ROWS:
        lo, hi = measure_ctx_range(Placement.HOST, opts, repeats, tasks,
                                   jobs=jobs)
        add(name, lo, hi)

    return ExperimentReport(
        experiment_id="table3",
        title="Scheduling microbenchmarks (ns; range of medians)",
        headers=("row", "paper", "measured", "delta(mid)"),
        rows=rows,
        notes="Context-switch rows: median inter-task overhead on one "
              "deep-queued core, %d repeats." % repeats,
    )


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
