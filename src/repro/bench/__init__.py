"""Benchmark harness: one module per paper table/figure.

Every module exposes ``run(fast=True)`` returning an
:class:`~repro.bench.reporting.ExperimentReport` (paper value vs
measured value per row) and a ``main()`` that prints it. ``fast=True``
uses shorter simulation windows and coarser load grids for CI /
pytest-benchmark; ``fast=False`` is what EXPERIMENTS.md records.
"""

from repro.bench.reporting import ExperimentReport, render_table

__all__ = ["ExperimentReport", "render_table"]
