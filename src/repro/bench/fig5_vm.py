"""Fig 5: VM compute performance, Wave (no ticks) vs on-host (ticks).

Two 128-vCPU VMs on a 128-logical-core socket run busy_loop on N vCPUs.
Paper improvements of Wave over on-host ghOSt: +11.2% at 1 active vCPU,
+9.7% at 31, +1.7% at 128 (pure tick-overhead savings).
"""

from __future__ import annotations

from repro.bench.parallel import parallel_map
from repro.bench.reporting import ExperimentReport
from repro.sched.experiment import SLO_SPECS  # noqa: F401  (timeline CLI)
from repro.sched.vm_experiment import run_vm_point

PAPER = {1: 11.2, 31: 9.7, 128: 1.7}
FAST_POINTS = (1, 31, 64, 128)
FULL_POINTS = (1, 8, 16, 31, 48, 64, 96, 128)


def run(fast: bool = True, jobs: int = None) -> ExperimentReport:
    """Run the experiment; returns a paper-vs-measured report."""
    points = FAST_POINTS if fast else FULL_POINTS
    measure = 40_000_000 if fast else 100_000_000
    # Every (vCPU count, ticks) pair is an independent simulation:
    # 2 * len(points) pool tasks, merged back in submission order.
    results = parallel_map(
        run_vm_point,
        [(n, ticks) for n in points for ticks in (False, True)],
        jobs=jobs, measure_ns=measure)
    rows = []
    for i, n in enumerate(points):
        wave, onhost = results[2 * i], results[2 * i + 1]
        improvement = 100.0 * (wave.total_work / onhost.total_work - 1.0)
        paper = f"{PAPER[n]:+.1f}%" if n in PAPER else ""
        rows.append((n, f"{wave.total_work / 1e6:,.0f}",
                     f"{onhost.total_work / 1e6:,.0f}",
                     f"{improvement:+.1f}%", paper,
                     f"{wave.frequency_ghz:.2f}"))
    return ExperimentReport(
        experiment_id="fig5",
        title="VM work output (kilo-gigacycles): Wave (no ticks) vs "
              "on-host ghOSt (ticks)",
        headers=("active vCPUs", "wave work", "on-host work",
                 "improvement", "paper", "wave GHz"),
        rows=rows,
        notes="Idle cores reach deep C-states only without ticks, "
              "raising the turbo budget of the busy ones.",
    )


def main() -> None:
    """Print the full-parameter report to stdout."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
