"""ASCII rendering of latency/throughput curves.

The paper's figures are latency-vs-throughput hockey sticks; this
renders them in a terminal so the examples and benchmark harness can
show curve *shapes*, not just knee summaries.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: One marker per series, assigned in insertion order.
MARKERS = "ox+*#@%&"


def render_curves(series: Dict[str, List[Tuple[float, float]]],
                  width: int = 64, height: int = 16,
                  x_label: str = "throughput",
                  y_label: str = "p99") -> str:
    """Plot ``{name: [(x, y), ...]}`` as an ASCII chart.

    Axes are linear and auto-scaled over all series; each series gets
    a marker from :data:`MARKERS`; a legend follows the chart.
    """
    if not series:
        raise ValueError("no series to plot")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = (height - 1) - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    for row_index, row in enumerate(grid):
        prefix = f"{y_hi:>10,.0f} |" if row_index == 0 else (
            f"{y_lo:>10,.0f} |" if row_index == height - 1 else
            " " * 10 + " |")
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 11 + f"{x_lo:,.0f}".ljust(width // 2)
                 + f"{x_hi:,.0f}".rjust(width // 2)
                 + f"  ({x_label}; y={y_label})")
    legend = "   ".join(f"{MARKERS[i % len(MARKERS)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
