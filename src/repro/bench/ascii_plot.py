"""ASCII rendering of latency/throughput curves.

The implementation moved to :mod:`repro.obs.ascii` so timeline
sparklines and history charts share one renderer; this module re-exports
the original names for existing imports.
"""

from __future__ import annotations

from repro.obs.ascii import MARKERS, render_curves

__all__ = ["MARKERS", "render_curves"]
