"""Chaos experiment: availability under injected faults (sections 3.3, 6).

For each fault class in :mod:`repro.sim.faults`, run the FIFO scheduling
deployment (the Fig 4a stack: Wave channel, ghOSt kernel, SmartNIC
agent, watchdog + failover manager, open-loop RocksDB load) with that
fault injected, and report:

- p99 / throughput degradation vs a fault-free run at the same seed,
- detection latency (fault firing -> watchdog verdict),
- recovery latency (detection -> replacement agent running), and
- whether the system actually recovered (work completed, queues drained).

The ``dma-timeout`` class runs a dedicated DMA-queue drill instead (the
scheduling path does not use bulk DMA).

Everything is a pure function of ``(plan, seed)``: two invocations of
``python -m repro chaos --seed 42 --plan agent-crash`` print identical
output, which is the reproducibility property the whole chaos layer
stands on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import Dict, List, Optional

from repro.bench.reporting import ExperimentReport
from repro.core import Placement, WaveChannel, WaveOpts
from repro.ghost import GhostAgent, GhostKernel, GhostTask
from repro.ghost.failover import FailoverManager
from repro.hw import HwParams, Machine
from repro.hw.pte import PteType
from repro.obs import Telemetry
from repro.obs.timeline import fault_incidents
from repro.queues.dma import DmaQueue
from repro.sched.experiment import SLO_SPECS  # noqa: F401  (timeline CLI)
from repro.sched import FifoPolicy
from repro.sim import Environment, FaultInjector, FaultPlan, LatencyStats
from repro.sim.faults import (
    AGENT_CRASH,
    AGENT_HANG,
    DMA_TIMEOUT,
    MSG_DELAY,
    MSG_DROP,
    MSG_DUP,
    MSIX_LOSS,
    PCIE_STALL,
)
from repro.workloads import PoissonLoadGen, Request, RequestKind, RocksDbModel


@dataclasses.dataclass
class ChaosTiming:
    """Scenario scale knobs (shrunk under ``--fast`` / in tests)."""

    duration_ns: float = 80_000_000.0
    warmup_ns: float = 2_000_000.0
    #: Offset from the watchdog's check grid (period = timeout/4 = 5 ms)
    #: so detection latency is representative, not a same-step accident.
    fault_at_ns: float = 11_000_000.0
    rate_per_sec: float = 120_000.0
    n_worker_cores: int = 2
    watchdog_timeout_ns: float = 20_000_000.0

    @classmethod
    def fast(cls) -> "ChaosTiming":
        return cls(duration_ns=50_000_000.0, fault_at_ns=8_000_000.0,
                   rate_per_sec=80_000.0, watchdog_timeout_ns=10_000_000.0)


def build_plans(plan_name: str, timing: ChaosTiming) -> List[FaultPlan]:
    """The declarative fault plan behind each named chaos scenario."""
    t0 = timing.fault_at_ns
    wd = timing.watchdog_timeout_ns
    if plan_name == "none":
        return []
    if plan_name == AGENT_CRASH:
        return [FaultPlan(AGENT_CRASH, at_ns=t0, target="ghost-agent")]
    if plan_name == AGENT_HANG:
        # Hang for 2x the watchdog threshold: the silence branch must
        # fire mid-hang and failover must cut the hang short.
        return [FaultPlan(AGENT_HANG, at_ns=t0, duration_ns=2 * wd,
                          target="ghost-agent", max_fires=1)]
    if plan_name == MSG_DROP:
        # Lose a bounded burst of host->agent messages, then crash the
        # agent later so pull-based recovery (section 6) re-discovers
        # the stranded tasks from the kernel's snapshot.
        return [FaultPlan(MSG_DROP, every_n=5, target="chaos-msg",
                          max_fires=15),
                FaultPlan(AGENT_CRASH, at_ns=t0 + 2 * wd,
                          target="ghost-agent")]
    if plan_name == MSG_DUP:
        return [FaultPlan(MSG_DUP, every_n=7, target="chaos-msg",
                          max_fires=25)]
    if plan_name == MSG_DELAY:
        return [FaultPlan(MSG_DELAY, probability=0.25, delay_ns=100_000.0,
                          target="chaos-msg")]
    if plan_name == PCIE_STALL:
        return [FaultPlan(PCIE_STALL, at_ns=t0, duration_ns=5_000_000.0,
                          factor=8.0)]
    if plan_name == MSIX_LOSS:
        return [FaultPlan(MSIX_LOSS, probability=0.3, max_fires=50)]
    if plan_name == DMA_TIMEOUT:
        return [FaultPlan(DMA_TIMEOUT, probability=0.3, max_fires=8)]
    raise ValueError(f"unknown chaos plan {plan_name!r}; "
                     f"one of {sorted(PLAN_NAMES)}")


#: The selectable chaos scenarios (plus "none", the baseline).
PLAN_NAMES = (AGENT_CRASH, AGENT_HANG, MSG_DROP, MSG_DUP, MSG_DELAY,
              PCIE_STALL, MSIX_LOSS, DMA_TIMEOUT)


@dataclasses.dataclass
class ChaosResult:
    """Deterministic observations from one chaos run."""

    plan: str
    seed: int
    submitted: int
    completed: int
    achieved_rate: float
    get_p99_us: float
    #: Fault firing -> watchdog verdict; negative when not applicable.
    detection_ns: float
    #: Watchdog verdict -> replacement agent polling again; negative
    #: when no failover happened.
    recovery_ns: float
    failovers: int
    failed_txns: int
    fault_fires: int
    messages_dropped: int
    messages_duplicated: int
    batches_delayed: int
    msix_lost: int
    dma_timeouts: int
    dma_retries: int
    injector_snapshot: str
    #: Fault lifecycle rows rederived from ``fault.*`` spans by
    #: :func:`repro.obs.timeline.fault_incidents` (kind / fired /
    #: detected / recovered timestamps). Deliberately **excluded** from
    #: :meth:`snapshot` and :meth:`digest`: incidents are a derived
    #: view, and the chaos determinism contract pins the original dump.
    incidents: tuple = ()

    def snapshot(self) -> str:
        """Byte-stable dump: equal across runs with the same seed."""
        lines = [
            f"plan={self.plan} seed={self.seed}",
            f"submitted={self.submitted} completed={self.completed}",
            f"achieved_rate={self.achieved_rate:.3f}/s",
            f"get_p99={self.get_p99_us:.3f}us",
            f"detection={self.detection_ns:.1f}ns "
            f"recovery={self.recovery_ns:.1f}ns failovers={self.failovers}",
            f"failed_txns={self.failed_txns} fires={self.fault_fires}",
            f"dropped={self.messages_dropped} "
            f"duplicated={self.messages_duplicated} "
            f"delayed={self.batches_delayed} msix_lost={self.msix_lost} "
            f"dma_timeouts={self.dma_timeouts} dma_retries={self.dma_retries}",
            "-- injector --",
            self.injector_snapshot,
        ]
        return "\n".join(lines)

    def digest(self) -> str:
        return hashlib.sha256(self.snapshot().encode()).hexdigest()[:16]

    def summary(self) -> str:
        """The ``python -m repro chaos`` report text."""
        lines = [f"chaos: plan={self.plan} seed={self.seed}",
                 f"  faults injected:   {self.fault_fires}",
                 f"  tasks completed:   {self.completed}/{self.submitted}"]
        if self.detection_ns >= 0:
            lines.append(f"  detection latency: "
                         f"{self.detection_ns / 1e6:.3f} ms")
        if self.recovery_ns >= 0:
            lines.append(f"  recovery latency:  "
                         f"{self.recovery_ns / 1e6:.3f} ms "
                         f"({self.failovers} failover(s))")
        if self.get_p99_us > 0:
            lines.append(f"  GET p99:           {self.get_p99_us:.1f} us")
        lines.append(f"  achieved rate:     {self.achieved_rate:,.0f} req/s")
        detail = []
        if self.messages_dropped:
            detail.append(f"dropped={self.messages_dropped}")
        if self.messages_duplicated:
            detail.append(f"duplicated={self.messages_duplicated}")
        if self.batches_delayed:
            detail.append(f"delayed_batches={self.batches_delayed}")
        if self.msix_lost:
            detail.append(f"msix_lost={self.msix_lost}")
        if self.dma_timeouts:
            detail.append(f"dma_timeouts={self.dma_timeouts} "
                          f"retries={self.dma_retries}")
        if self.failed_txns:
            detail.append(f"failed_txns={self.failed_txns}")
        if detail:
            lines.append("  fault effects:     " + " ".join(detail))
        lines.append(f"  snapshot digest:   {self.digest()}")
        return "\n".join(lines)


def run_chaos(plan_name: str, seed: int = 42,
              timing: Optional[ChaosTiming] = None) -> ChaosResult:
    """Run one chaos scenario; fully determined by ``(plan, seed)``."""
    timing = timing or ChaosTiming()
    if plan_name == DMA_TIMEOUT:
        return _run_dma_chaos(plan_name, seed, timing)
    return _run_sched_chaos(plan_name, seed, timing)


#: The fault lifecycle stages the chaos report reads its detection and
#: recovery latencies from (see :mod:`repro.obs`).
_FAULT_STAGES = ("fault.fire", "fault.verdict", "fault.recover")


def _run_sched_chaos(plan_name: str, seed: int,
                     timing: ChaosTiming) -> ChaosResult:
    env = Environment()
    if getattr(env, "telemetry", None) is None:
        # No globally installed hub: attach a private one restricted to
        # the fault lifecycle stages, which the report reads below.
        Telemetry(stage_filter=list(_FAULT_STAGES)).attach(
            env, label=f"chaos-{plan_name}")
    machine = Machine(env, HwParams.pcie())
    channel = WaveChannel(machine, Placement.NIC, WaveOpts.full(),
                          name="chaos")
    kernel = GhostKernel(channel, core_ids=list(range(timing.n_worker_cores)),
                         rng=random.Random(seed))
    agent = GhostAgent(channel, FifoPolicy(), kernel.core_ids)

    injector = FaultInjector(env, seed=seed,
                             plans=build_plans(plan_name, timing))
    injector.watch_agent(agent)
    injector.arm()

    generation = [0]

    def make_replacement() -> GhostAgent:
        generation[0] += 1
        replacement = GhostAgent(channel, FifoPolicy(), kernel.core_ids,
                                 name=f"ghost-agent-g{generation[0]}")
        injector.watch_agent(replacement)
        return replacement

    manager = FailoverManager(
        kernel, agent, make_replacement,
        watchdog_timeout_ns=timing.watchdog_timeout_ns)
    agent.start()
    kernel.start()

    model = RocksDbModel.fifo_mix(random.Random(seed + 1))

    def submit(request: Request):
        task = GhostTask(service_ns=model.task_service_ns(request),
                         payload=request)
        yield from kernel.submit(task)

    loadgen = PoissonLoadGen(env, model, timing.rate_per_sec, submit,
                             seed=seed + 2, warmup_ns=timing.warmup_ns)
    loadgen.start()
    env.run(until=timing.duration_ns)
    # Stop the load and let the system drain, so "did it recover" is a
    # queue-drained question, not a race against the horizon.
    loadgen.stop()
    env.run(until=timing.duration_ns * 1.5)

    gets = LatencyStats("get")
    completed = 0
    for request in loadgen.requests:
        if request.completed_ns is None:
            continue
        completed += 1
        if (request.kind is RequestKind.GET
                and request.completed_ns >= timing.warmup_ns):
            gets.record(request.latency_ns)
    window_s = (timing.duration_ns - timing.warmup_ns) / 1e9

    # Detection/recovery stats only make sense for plans that take an
    # agent down; pure perturbation plans (dup/delay/stall/msix-loss)
    # still see drain-phase idle-generation recycles, which are the
    # watchdog's normal policy, not this fault's detection. Both
    # latencies come from the fault lifecycle spans: fault.fire marks
    # the injection, fault.verdict the watchdog's call, fault.recover
    # covers verdict -> replacement agent polling.
    spans = env.telemetry.spans
    down_at = next((s.begin_ns for s in spans.spans("fault.fire")
                    if s.args["kind"] in (AGENT_CRASH, AGENT_HANG)), None)
    detection = recovery = -1.0
    if down_at is not None:
        # First verdict at/after the crash/hang (later verdicts may be
        # idle-generation recycles, which are not this fault's).
        after = [s for s in spans.spans("fault.verdict")
                 if s.begin_ns >= down_at]
        if after:
            detection = after[0].begin_ns - down_at
        recoveries = spans.spans("fault.recover")
        if recoveries:
            recovery = recoveries[0].duration_ns
    incidents = tuple(
        (row["kind"], row["fired_ns"], row["detected_ns"],
         row["recovered_ns"])
        for row in fault_incidents(spans))

    return ChaosResult(
        plan=plan_name,
        seed=seed,
        submitted=len(loadgen.requests),
        completed=completed,
        achieved_rate=completed / window_s,
        get_p99_us=gets.p99 / 1e3 if gets.count else 0.0,
        detection_ns=detection,
        recovery_ns=recovery,
        failovers=manager.failovers,
        failed_txns=kernel.failed_txns,
        fault_fires=injector.total_fires(),
        messages_dropped=injector.messages_dropped,
        messages_duplicated=injector.messages_duplicated,
        batches_delayed=injector.batches_delayed,
        msix_lost=injector.msix_lost,
        dma_timeouts=injector.dma_timeouts,
        dma_retries=machine.nic.dma.retries,
        injector_snapshot=injector.snapshot(),
        incidents=incidents,
    )


def _run_dma_chaos(plan_name: str, seed: int,
                   timing: ChaosTiming) -> ChaosResult:
    """DMA drill: push batches through a DmaQueue under completion
    timeouts; the engine's retry/backoff must deliver everything."""
    env = Environment()
    machine = Machine(env, HwParams.pcie())
    link = machine.interconnect
    queue = DmaQueue(env, "chaos-dma", machine.nic.dma,
                     link.nic_path(PteType.WB), link.host_local_path(),
                     entry_words=6)
    injector = FaultInjector(env, seed=seed,
                             plans=build_plans(plan_name, timing))
    injector.arm()

    n_batches = 40
    batch = 16
    stats = {"consumed": 0, "first_sent_at": 0.0, "last_arrival": 0.0}

    def producer():
        for i in range(n_batches):
            cost, completion = queue.produce(list(range(batch)))
            yield env.timeout(cost)
            if completion is not None:
                yield completion
            yield env.timeout(5_000.0)  # think time between batches

    def consumer():
        while stats["consumed"] < n_batches * batch:
            yield queue.wait_nonempty()
            items, cost = queue.consume()
            if cost:
                yield env.timeout(cost)
            if items:
                stats["consumed"] += len(items)
                stats["last_arrival"] = env.now

    env.process(producer(), name="chaos-dma-producer")
    env.process(consumer(), name="chaos-dma-consumer")
    env.run(until=timing.duration_ns)

    total = n_batches * batch
    window_s = stats["last_arrival"] / 1e9 if stats["last_arrival"] else 1.0
    return ChaosResult(
        plan=plan_name,
        seed=seed,
        submitted=total,
        completed=stats["consumed"],
        achieved_rate=stats["consumed"] / window_s,
        get_p99_us=0.0,
        detection_ns=-1.0,
        recovery_ns=-1.0,
        failovers=0,
        failed_txns=0,
        fault_fires=injector.total_fires(),
        messages_dropped=0,
        messages_duplicated=0,
        batches_delayed=0,
        msix_lost=0,
        dma_timeouts=injector.dma_timeouts,
        dma_retries=machine.nic.dma.retries,
        injector_snapshot=injector.snapshot(),
    )


def run(fast: bool = True, seed: int = 42,
        jobs: int = None) -> ExperimentReport:
    """The ``faults`` experiment: every class vs the fault-free baseline."""
    timing = ChaosTiming.fast() if fast else ChaosTiming()
    from repro.bench.parallel import PointSpec, run_points
    # The fault-free baseline plus each plan are fully independent
    # (plan, seed)-determined runs: fan them out together.
    baseline, *results = run_points(
        [PointSpec(_run_sched_chaos, ("none", seed, timing))]
        + [PointSpec(run_chaos, (plan_name, seed), dict(timing=timing))
           for plan_name in PLAN_NAMES],
        jobs=jobs)
    rows = []
    for plan_name, result in zip(PLAN_NAMES, results):
        if plan_name == DMA_TIMEOUT:
            p99 = "n/a"
            tput_delta = "n/a"
        else:
            p99 = f"{baseline.get_p99_us:.0f} -> {result.get_p99_us:.0f}"
            tput_delta = (f"{100.0 * (result.achieved_rate / baseline.achieved_rate - 1.0):+.1f}%"
                          if baseline.achieved_rate else "n/a")
        rows.append((
            plan_name,
            result.fault_fires,
            f"{result.completed}/{result.submitted}",
            p99,
            tput_delta,
            f"{result.detection_ns / 1e6:.2f}" if result.detection_ns >= 0
            else "-",
            f"{result.recovery_ns / 1e6:.2f}" if result.recovery_ns >= 0
            else "-",
            result.digest(),
        ))
    notes = ("p99/tput compare against a fault-free run at the same "
             "seed; detection = fault -> watchdog, recovery = watchdog "
             "-> replacement agent running (pull-based, section 6).")
    incident_lines = []
    for plan_name, result in zip(PLAN_NAMES, results):
        for kind, fired, detected, recovered in result.incidents:
            det = (f"detected +{(detected - fired) / 1e6:.2f} ms"
                   if detected is not None else "undetected")
            rec = (f"recovered +{(recovered - detected) / 1e6:.2f} ms"
                   if recovered is not None and detected is not None
                   else "no recovery")
            incident_lines.append(
                f"  {plan_name}: {kind} fired at "
                f"{fired / 1e6:.2f} ms, {det}, {rec}")
    if incident_lines:
        notes += ("\nincident log (fault lifecycle rederived from "
                  "fault.* spans):\n" + "\n".join(incident_lines))
    return ExperimentReport(
        experiment_id="faults",
        title="chaos: recovery under injected faults "
              f"(seed={seed}, FIFO deployment)",
        headers=("fault", "fires", "completed", "p99 (us)", "tput",
                 "detect (ms)", "recover (ms)", "digest"),
        rows=rows,
        notes=notes,
    )


def main() -> None:
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
