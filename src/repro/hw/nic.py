"""The SmartNIC SoC: ARM cores, local DRAM, DMA engine, MSI-X function.

Models the Intel Mount Evans IPU of section 7: 16 Neoverse N1 cores at
3 GHz with fast coherent access to SoC DRAM; the host reaches that DRAM
only through the MMIO aperture, and the SoC reaches host DRAM only
through DMA.
"""

from __future__ import annotations

from typing import Tuple

from repro.hw.dma import DmaEngine
from repro.hw.params import HwParams
from repro.hw.pcie import Interconnect
from repro.sim import Environment, Event


class SmartNic:
    """One SmartNIC with its interconnect-facing functions."""

    def __init__(self, env: Environment, params: HwParams,
                 interconnect: Interconnect):
        self.env = env
        self.params = params
        self.interconnect = interconnect
        self.dma = DmaEngine(env, params)
        self.cores = params.nic_cores
        self.ghz = params.nic_ghz
        self.msix_sent = 0
        #: Deliveries swallowed by fault injection (the sender still
        #: pays its send cost; only the handler-side event never fires).
        self.msix_lost = 0

    def compute_time(self, host_equivalent_ns: float) -> float:
        """Time for NIC ARM cores to do work that takes
        ``host_equivalent_ns`` on a host x86 core.

        Combines the frequency gap and the per-cycle throughput handicap
        (section 7.4.2: offloaded SOL is slower "because it uses weaker
        ARM cores rather than x86 host cores").
        """
        if self.ghz <= 0:
            raise ValueError("NIC frequency must be positive")
        freq_ratio = self.params.nic_reference_ghz / self.ghz
        return host_equivalent_ns * self.params.nic_compute_handicap * freq_ratio

    def raise_msix(self, via_ioctl: bool = True, ctx=None,
                   carrier=None) -> Tuple[float, Event]:
        """Send an MSI-X to a host core.

        Returns ``(sender_cost, delivery)``: the agent burns
        ``sender_cost`` ns of CPU; ``delivery`` fires when the host
        core's handler can start (the host then pays ``msix_receive``).

        Under fault injection a delivery may be lost: the sender still
        pays its cost, but ``delivery`` never fires -- the parked core's
        periodic idle re-check is then the only wakeup path, exactly the
        backstop section 5.4 prescribes.
        """
        self.msix_sent += 1
        send = self.interconnect.msix_send(via_ioctl)
        tel = getattr(self.env, "telemetry", None)
        faults = getattr(self.env, "faults", None)
        if faults is not None and faults.on_msix_send():
            self.msix_lost += 1
            if tel is not None:
                span = tel.span("msix.deliver", "pcie", dur_ns=send,
                                ctx=ctx, lost=True)
                if carrier is not None:
                    carrier.ctx = tel.ctx_after(span)
                tel.count("msix_delivered", outcome="lost")
            return send, Event(self.env)  # pending forever: lost on the wire
        wire = send + self.interconnect.msix_propagation()
        if tel is not None:
            span = tel.span("msix.deliver", "pcie", dur_ns=wire, ctx=ctx)
            if carrier is not None:
                carrier.ctx = tel.ctx_after(span)
            tel.count("msix_delivered", outcome="ok")
        # The delivery crosses the NIC -> host boundary: route it through
        # the lookahead-checked channel so the partitioned kernel can
        # verify it respects the MSI-X minimum (wire >= send + e2e wire
        # propagation >= the declared nic->host window, even stalled --
        # stalls only inflate the propagation term).
        delivery = self.env.cross_timeout("host", wire)
        return send, delivery
