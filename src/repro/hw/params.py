"""The single hardware calibration table.

Constants marked ``[Table 2]`` are the paper's own hardware
microbenchmarks of the Intel Mount Evans + AMD Zen3 testbed and are used
verbatim. Constants marked ``[fit: ...]`` are not reported directly by
the paper and were fitted so that the composed models reproduce the cited
paper number (see DESIGN.md section 5).

All times are nanoseconds; all sizes are bytes unless suffixed.
"""

from __future__ import annotations

import dataclasses

#: x86 cache-line size; MMIO write-through fills operate at this grain.
CACHE_LINE_BYTES = 64

#: All queue entries are multiples of 64-bit words.
WORD_BYTES = 8


@dataclasses.dataclass
class HwParams:
    """Latency/bandwidth parameters of one host<->SmartNIC deployment."""

    # -- MMIO over the interconnect (host side) -- [Table 2 rows 1-2]
    mmio_read_uc: float = 750.0        #: 64-bit uncacheable MMIO read.
    mmio_write_uc: float = 50.0        #: 64-bit uncacheable MMIO write (posted).

    # -- MSI-X -- [Table 2 rows 3-6]
    msix_send_reg: float = 70.0        #: register write only.
    msix_send_ioctl: float = 340.0     #: ioctl + register write (agent path).
    msix_receive: float = 350.0        #: host-side receive/handler entry.
    msix_e2e: float = 1600.0           #: full send -> handler latency.

    # -- host cache behaviour over MMIO --
    #: Cache hit on a WT-cached MMIO line. [fit: commodity L1/L2 hit]
    cache_hit: float = 4.0
    #: Per-word cost of a write into the WC buffer. [fit: store-buffer hit]
    wc_buffered_write: float = 6.0
    #: Draining the WC buffer (sfence + one posted burst). [fit: one
    #: posted PCIe write, same order as mmio_write_uc]
    wc_flush: float = 50.0
    #: WT write: posted through to the device, local line updated.
    wt_write: float = 50.0
    #: clflush of one line (software coherence, section 5.3.2).
    clflush: float = 25.0
    #: Issuing a non-blocking prefetch for a WT line.
    prefetch_issue: float = 4.0

    #: One-way visibility delay of a posted host MMIO write at the
    #: SmartNIC. [fit: ~half the 750ns read roundtrip plus bridge/flow
    #: control overhead so that the Table 3 baseline row composes]
    mmio_write_visibility: float = 700.0

    # -- SmartNIC-side access to its own (SoC-local, coherent) DRAM --
    #: Per-word cost with *uncacheable/device* mapping -- the unoptimized
    #: default for the exported MMIO aperture. [fit: Table 3 row "Open a
    #: Decision in Agent & Send MSI-X" baseline = 1013 ns with a 5-word
    #: (4 payload + valid flag) decision: 5 * 134.6 + 340 (ioctl MSI-X)
    #: = 1013]
    nic_access_uc: float = 134.6
    #: Per-word cost with WB mapping (section 5.3.1). [fit: same row
    #: optimized = 426 ns: 5 * 17.2 + 340 = 426]
    nic_access_wb: float = 17.2

    # -- host-local shared memory (the on-host ghOSt baseline) --
    #: Per-word cost of coherent shared-memory access on the host.
    host_shm_access: float = 5.0
    #: Userspace agent sending an inter-processor interrupt (syscall +
    #: APIC write). [fit: on-host ghOSt "open a decision and send
    #: interrupt" = 770 ns with a 6-word decision: 6*5 + 740 = 770]
    host_ipi_send: float = 740.0
    #: IPI receive overhead on the interrupted host core.
    host_ipi_receive: float = 350.0
    #: IPI end-to-end delivery latency (send -> handler entry). Lower
    #: than MSI-X e2e (no PCIe trip), per Table 2's note that MSI-X is
    #: "comparable to interprocessor interrupts" apart from the wire.
    host_ipi_e2e: float = 1400.0

    # -- DMA engine --
    #: MMIO doorbell writes needed to launch one DMA descriptor.
    dma_setup_writes: int = 3
    #: Fixed per-transfer latency (engine wakeup + PCIe). [fit: Neugebauer
    #: et al. report ~1us PCIe roundtrip; small DMA ~ this order]
    dma_base_latency: float = 900.0
    #: Streaming bandwidth in bytes/ns (= GB/s). PCIe Gen4 x16 payload
    #: rate net of protocol overhead. [fit: 100GiB address space of PTEs
    #: (8B/page -> ~200MiB) transfers in ~1ms per section 7.4.2 -> ~20+
    #: GB/s effective with batching]
    dma_bandwidth: float = 22.0
    #: Polling interval for asynchronous DMA completion checks.
    dma_poll_interval: float = 200.0
    #: How long the engine waits for a completion before declaring the
    #: descriptor lost and reissuing it. [fit: ~10x the base latency,
    #: the usual device-driver watchdog margin]
    dma_timeout_ns: float = 10_000.0
    #: Base pause before a reissue; doubles per consecutive timeout.
    dma_retry_backoff_ns: float = 1_000.0
    #: Reissues before the engine gives up on injected timeouts and the
    #: final attempt is forced through (bounds injected-fault recovery).
    dma_max_retries: int = 8

    # -- host CPU topology (AMD Zen3 testbed, section 7) --
    host_sockets: int = 2
    cores_per_socket: int = 64
    threads_per_core: int = 2
    cores_per_ccx: int = 8
    host_base_ghz: float = 2.45
    host_max_ghz: float = 3.5
    #: Per-thread throughput when both SMT siblings are busy (each
    #: sibling gets ~55% of the core; 1.1x total). [fit: typical SMT
    #: scaling; cancels out in Fig 5's Wave-vs-on-host ratios]
    smt_efficiency: float = 0.55

    # -- SmartNIC SoC (Intel Mount Evans, section 7) --
    nic_cores: int = 16
    nic_ghz: float = 3.0
    #: The frequency at which the compute handicap was calibrated: the
    #: real Mount Evans runs its N1 cores at 3.0 GHz; the UPI-emulated
    #: SmartNIC uses frequency-capped host cores referenced to the
    #: host's 3.5 GHz (section 7.3.3).
    nic_reference_ghz: float = 3.0
    #: Relative per-cycle throughput of a NIC ARM core vs a host x86
    #: core for the SOL policy's vectorized compute. [fit: section 7.4.2
    #: per-iteration durations, see repro/mem/agent.py]
    nic_compute_handicap: float = 2.08

    # -- timer ticks and C-states (section 7.2.4) --
    tick_period: float = 1_000_000.0      #: 1 ms tick, per logical core.
    #: CPU time consumed by one tick (timer IRQ + scheduler invocation
    #: + ghOSt message traffic). [fit: Fig 5's "1.7% solely timer tick
    #: overhead" at 128 active vCPUs: 17000/1000000 = 1.7%]
    tick_cost: float = 17_000.0
    #: Idle residency before a core may enter a deep C-state. Ticks every
    #: 1 ms keep idle cores above this threshold forever.
    deep_sleep_entry: float = 2_000_000.0

    #: Whether host and device share a coherent address space (UPI/CXL
    #: emulation of section 7.3.3). Coherent interconnects make WB
    #: mappings legal on the host and remove software coherence.
    coherent: bool = False

    def domain_lookahead(self) -> dict:
        """Minimum cross-domain latencies: the conservative-PDES windows.

        Maps ordered ``(src, dst)`` pairs over the three timing domains
        -- ``host`` (socket), ``ic`` (interconnect), ``nic`` (SoC) --
        to the smallest latency any modeled interaction can traverse
        that hop in, derived from the Table 2 minima:

        - ``host -> ic``: a posted UC write enters the fabric no faster
          than ``mmio_write_uc``.
        - ``ic -> nic``: the fastest host-originated signal becomes
          visible NIC-side after ``min(mmio_write_visibility,
          dma_base_latency)``; subtract the host->ic leg already paid.
        - ``nic -> ic``: an MSI-X enters the fabric no faster than the
          bare register write, ``msix_send_reg``.
        - ``ic -> host``: the MSI-X wire propagation (e2e minus send
          ioctl minus receive overhead), minus the nic->ic leg.

        Used by :meth:`repro.hw.pcie.Interconnect.partition_plan`; any
        window that comes out non-positive makes the plan unusable and
        the kernel falls back to the serial path.
        """
        host_ic = self.mmio_write_uc
        ic_nic = min(self.mmio_write_visibility,
                     self.dma_base_latency) - host_ic
        nic_ic = self.msix_send_reg
        ic_host = (self.msix_e2e - self.msix_send_ioctl
                   - self.msix_receive) - nic_ic
        return {
            ("host", "ic"): host_ic,
            ("ic", "nic"): ic_nic,
            ("host", "nic"): host_ic + ic_nic,
            ("nic", "ic"): nic_ic,
            ("ic", "host"): ic_host,
            ("nic", "host"): nic_ic + ic_host,
        }

    @classmethod
    def pcie(cls) -> "HwParams":
        """The paper's default testbed: PCIe-attached Mount Evans."""
        return cls()

    @classmethod
    def cxl(cls, nic_ghz: float = 3.0) -> "HwParams":
        """A CXL-attached SmartNIC (section 5.2's outlook).

        Coherent like UPI but over PCIe physical lanes: SmartNIC SoC
        memory becomes cacheable on the host (prefetching and reuse of
        MMIO reads work in hardware; WC batches flush through the cache
        hierarchy), with latencies between UPI and plain PCIe. The SoC
        still carries the same ARM cores as the PCIe part.
        """
        return cls(
            # CXL.mem load-to-use latency is a few hundred ns.
            mmio_read_uc=400.0,
            mmio_write_uc=60.0,
            mmio_write_visibility=350.0,
            # Interrupts still traverse the PCIe physical layer.
            msix_send_reg=70.0,
            msix_send_ioctl=340.0,
            msix_receive=350.0,
            msix_e2e=1600.0,
            # The agent still enjoys local WB access to SoC DRAM.
            nic_access_uc=134.6,
            nic_access_wb=17.2,
            nic_cores=16,
            nic_ghz=nic_ghz,
            nic_reference_ghz=3.0,
            nic_compute_handicap=2.08,
            coherent=True,
        )

    @classmethod
    def upi(cls, nic_ghz: float = 3.0) -> "HwParams":
        """Section 7.3.3's UPI-attached emulated SmartNIC.

        A UPI link between two host sockets: coherent, roughly 4-5x lower
        latency than PCIe MMIO. The emulated SmartNIC runs host cores
        frequency-capped to ``nic_ghz``.
        """
        return cls(
            # Cross-socket cache-miss load / store on UPI.
            mmio_read_uc=160.0,
            mmio_write_uc=90.0,
            mmio_write_visibility=160.0,
            # IPIs replace MSI-X between sockets.
            msix_send_reg=70.0,
            msix_send_ioctl=340.0,
            msix_receive=350.0,
            msix_e2e=1100.0,
            # Coherent: the "NIC" socket maps everything WB. Local
            # cache accesses are partially core-clock bound (L1/L2
            # scale with the cap, the memory side does not), so the
            # frequency cap slows them at ~80% proportionality.
            nic_access_uc=17.2 * (1.0 + 0.8 * (3.5 / nic_ghz - 1.0)),
            nic_access_wb=17.2 * (1.0 + 0.8 * (3.5 / nic_ghz - 1.0)),
            nic_cores=16,
            nic_ghz=nic_ghz,
            nic_reference_ghz=3.5,
            # Compute handicap is pure frequency scaling on x86 cores.
            nic_compute_handicap=1.0,
            coherent=True,
        )
