"""Host-CPU cache behaviour over the MMIO aperture.

Two stateful mechanisms from paper section 5.3:

- :class:`WriteCombiningBuffer` -- WC stores coalesce into a buffer that
  drains as one posted burst (flushed explicitly with ``sfence``).
- :class:`HostMmioCache` -- WT reads fill whole cache lines, making
  subsequent reads of the same line cheap; software coherence is
  maintained with ``clflush``; ``prefetch`` starts a line fill early so a
  later read hits.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.hw.params import HwParams, CACHE_LINE_BYTES


def line_of(addr: int) -> int:
    """Cache-line index containing byte address ``addr``."""
    return addr // CACHE_LINE_BYTES


class WriteCombiningBuffer:
    """Models the x86 write-combining buffer for a WC-mapped aperture.

    Stores are cheap (they hit the buffer); the data only becomes visible
    to the device after a :meth:`flush` (sfence), which costs one posted
    burst regardless of how many words were combined. This is what lets
    the host "enqueue a message batch before the buffer is flushed"
    (section 5.3.1).
    """

    def __init__(self, params: HwParams):
        self.params = params
        self.pending_words = 0
        self.flushes = 0

    def write(self, words: int = 1) -> float:
        """Buffer ``words`` stores; returns CPU cost in ns."""
        if words < 0:
            raise ValueError("words must be non-negative")
        self.pending_words += words
        return words * self.params.wc_buffered_write

    def flush(self) -> float:
        """Drain the buffer (sfence). Returns CPU cost in ns.

        Flushing an empty buffer is free: sfence with nothing pending
        retires immediately.
        """
        if self.pending_words == 0:
            return 0.0
        self.pending_words = 0
        self.flushes += 1
        return self.params.wc_flush


class HostMmioCache:
    """Cache-line presence tracking for WT-mapped MMIO reads.

    ``read`` returns the CPU cost of a 64-bit load at ``addr`` and pulls
    the whole line in on a miss. ``prefetch`` issues a non-blocking fill;
    a read arriving before the fill completes pays only the remaining
    wait. ``clflush`` implements the software coherence protocol of
    section 5.3.2 (the host flushes stale decision lines).
    """

    def __init__(self, params: HwParams):
        self.params = params
        self._resident: Set[int] = set()
        self._inflight: Dict[int, float] = {}  # line -> arrival time
        self.hits = 0
        self.misses = 0

    def read(self, addr: int, now: float) -> float:
        """Cost of a 64-bit cached (WT) load at ``addr`` at time ``now``."""
        line = line_of(addr)
        if line in self._resident:
            self.hits += 1
            return self.params.cache_hit
        arrival = self._inflight.pop(line, None)
        if arrival is not None:
            # Prefetch in flight: wait out the remainder, then hit.
            self._resident.add(line)
            if arrival <= now:
                self.hits += 1
                return self.params.cache_hit
            self.misses += 1
            return (arrival - now) + self.params.cache_hit
        self.misses += 1
        self._resident.add(line)
        return self.params.mmio_read_uc

    def prefetch(self, addr: int, now: float) -> float:
        """Start a non-blocking line fill; returns (tiny) issue cost."""
        line = line_of(addr)
        if line in self._resident or line in self._inflight:
            return self.params.prefetch_issue
        self._inflight[line] = now + self.params.mmio_read_uc
        return self.params.prefetch_issue

    def clflush(self, addr: int) -> float:
        """Evict the line containing ``addr``; returns CPU cost."""
        line = line_of(addr)
        self._resident.discard(line)
        self._inflight.pop(line, None)
        return self.params.clflush

    def is_resident(self, addr: int) -> bool:
        """Whether a load at ``addr`` would hit right now."""
        return line_of(addr) in self._resident
