"""Memory-access paths: how an actor reaches a shared buffer.

The Floem-style rings in :mod:`repro.queues` are placement-agnostic; what
differs between deployments is the *path* each side uses to touch the
ring's backing memory. A :class:`MemPath` turns word-granularity accesses
into CPU-time costs, so a single ring implementation serves all of:

- SmartNIC agent <-> its own DRAM (local WB or device-UC mapping),
- host <-> SmartNIC DRAM over PCIe MMIO (UC / WC / WT PTEs),
- host <-> host shared memory (the on-host ghOSt baseline).
"""

from __future__ import annotations

from repro.hw.cache import HostMmioCache, WriteCombiningBuffer, CACHE_LINE_BYTES
from repro.hw.params import HwParams, WORD_BYTES
from repro.hw.pte import PteType


class MemPath:
    """Cost model for word-granularity access to one shared buffer."""

    #: True when accesses traverse the host<->NIC interconnect, making
    #: them eligible for transient-congestion (pcie-stall) inflation by
    #: an attached :class:`~repro.sim.faults.FaultInjector`.
    crosses_interconnect = False

    def read_words(self, addr: int, n: int, now: float) -> float:
        """CPU cost of loading ``n`` 64-bit words starting at ``addr``."""
        raise NotImplementedError

    def write_words(self, addr: int, n: int) -> float:
        """CPU cost of storing ``n`` 64-bit words starting at ``addr``."""
        raise NotImplementedError

    def flush_writes(self) -> float:
        """Make buffered writes visible to the other side (sfence)."""
        return 0.0

    def visibility_delay(self) -> float:
        """Time after the store retires before the consumer can see it."""
        return 0.0

    def invalidate(self, addr: int, n: int) -> float:
        """Software coherence: drop any cached copy of ``n`` words."""
        return 0.0

    def prefetch(self, addr: int, n: int, now: float) -> float:
        """Begin a non-blocking fill of ``n`` words; tiny issue cost."""
        return 0.0


class LocalWbPath(MemPath):
    """Coherent cached access to local DRAM (NIC agent with WB PTEs,
    or any host access to host DRAM)."""

    def __init__(self, params: HwParams, cost_per_word: float):
        self.params = params
        self.cost_per_word = cost_per_word

    def read_words(self, addr: int, n: int, now: float) -> float:
        return n * self.cost_per_word

    def write_words(self, addr: int, n: int) -> float:
        return n * self.cost_per_word


class LocalUcPath(MemPath):
    """Device/uncacheable mapping of local DRAM -- the unoptimized
    default for the SmartNIC's exported aperture (Table 3 baseline)."""

    def __init__(self, params: HwParams):
        self.params = params

    def read_words(self, addr: int, n: int, now: float) -> float:
        return n * self.params.nic_access_uc

    def write_words(self, addr: int, n: int) -> float:
        return n * self.params.nic_access_uc


class HostSharedMemPath(LocalWbPath):
    """Host coherent shared memory (on-host ghOSt communication)."""

    def __init__(self, params: HwParams):
        super().__init__(params, params.host_shm_access)


class HostMmioPath(MemPath):
    """Host access to SmartNIC DRAM over the interconnect, with the cost
    semantics of the chosen PTE type (section 5.3.1)."""

    crosses_interconnect = True

    def __init__(self, params: HwParams, pte: PteType):
        if pte is PteType.WB and not params.coherent:
            raise ValueError(
                "WB host mappings of device memory require a coherent "
                "interconnect (section 5.3.1)")
        self.params = params
        self.pte = pte
        self.cache = HostMmioCache(params) if pte.caches_reads else None
        self.wc_buffer = (
            WriteCombiningBuffer(params) if pte is PteType.WC else None)

    # -- reads ---------------------------------------------------------

    def read_words(self, addr: int, n: int, now: float) -> float:
        if self.cache is None:
            # UC and WC: every load is a full interconnect roundtrip.
            return n * self.params.mmio_read_uc
        cost = 0.0
        for i in range(n):
            cost += self.cache.read(addr + i * WORD_BYTES, now + cost)
        return cost

    def prefetch(self, addr: int, n: int, now: float) -> float:
        if self.cache is None:
            return 0.0  # prefetch is meaningless without read caching
        cost = 0.0
        nbytes = n * WORD_BYTES
        for offset in range(0, nbytes, CACHE_LINE_BYTES):
            cost += self.cache.prefetch(addr + offset, now)
        return cost

    def invalidate(self, addr: int, n: int) -> float:
        if self.cache is None:
            return 0.0
        cost = 0.0
        nbytes = n * WORD_BYTES
        for offset in range(0, nbytes, CACHE_LINE_BYTES):
            line_cost = self.cache.clflush(addr + offset)
            # On a coherent interconnect the hardware invalidates the
            # stale line; the software clflush (and its cost) vanishes
            # but the next read still refetches (section 7.3.3).
            if not self.params.coherent:
                cost += line_cost
        return cost

    # -- writes --------------------------------------------------------

    def write_words(self, addr: int, n: int) -> float:
        if self.wc_buffer is not None:
            return self.wc_buffer.write(n)
        if self.pte is PteType.WB:
            # Coherent interconnect: stores land in the host cache.
            return n * self.params.wc_buffered_write
        # UC and WT: posted write-through per word.
        per_word = (self.params.wt_write if self.pte is PteType.WT
                    else self.params.mmio_write_uc)
        return n * per_word

    def flush_writes(self) -> float:
        if self.wc_buffer is not None:
            return self.wc_buffer.flush()
        return 0.0

    def visibility_delay(self) -> float:
        return self.params.mmio_write_visibility
