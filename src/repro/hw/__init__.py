"""Hardware models: host CPU, SmartNIC SoC, and the PCIe/UPI interconnect.

Every latency constant in :mod:`repro.hw.params` is either taken directly
from the paper's Table 2 or fitted to a paper-reported number (the fit is
documented next to the constant).
"""

from repro.hw.params import HwParams, CACHE_LINE_BYTES, WORD_BYTES
from repro.hw.pte import PteType
from repro.hw.cache import WriteCombiningBuffer, HostMmioCache
from repro.hw.pcie import Interconnect
from repro.hw.dma import DmaEngine
from repro.hw.paths import (
    MemPath,
    LocalWbPath,
    LocalUcPath,
    HostMmioPath,
    HostSharedMemPath,
)
from repro.hw.cpu import Core, Ccx, Socket, HostCpu
from repro.hw.turbo import TurboGovernor
from repro.hw.nic import SmartNic
from repro.hw.platform import Machine

__all__ = [
    "HwParams",
    "CACHE_LINE_BYTES",
    "WORD_BYTES",
    "PteType",
    "WriteCombiningBuffer",
    "HostMmioCache",
    "Interconnect",
    "DmaEngine",
    "MemPath",
    "LocalWbPath",
    "LocalUcPath",
    "HostMmioPath",
    "HostSharedMemPath",
    "Core",
    "Ccx",
    "Socket",
    "HostCpu",
    "TurboGovernor",
    "SmartNic",
    "Machine",
]
