"""The host<->SmartNIC interconnect: MMIO, MSI-X, and path factories."""

from __future__ import annotations

from repro.hw.params import HwParams
from repro.hw.paths import (
    HostMmioPath,
    HostSharedMemPath,
    LocalUcPath,
    LocalWbPath,
    MemPath,
)
from repro.hw.pte import PteType


class Interconnect:
    """Timing model for one PCIe (or UPI, section 7.3.3) link.

    Exposes the primitive costs of Table 2 plus factories for the
    :class:`~repro.hw.paths.MemPath` objects each endpoint uses.

    When an ``env`` is attached (as :class:`~repro.hw.platform.Machine`
    does) and a fault injector is active, a transient ``pcie-stall``
    inflates everything that traverses the link -- the MMIO primitives
    and the wire portion of MSI-X delivery -- by the stall factor.
    """

    def __init__(self, params: HwParams, env=None):
        self.params = params
        self.env = env

    def _stall_factor(self) -> float:
        """Current congestion inflation (1.0 outside stall windows)."""
        faults = getattr(self.env, "faults", None) if self.env else None
        return faults.interconnect_factor() if faults is not None else 1.0

    def _telemetry(self):
        return getattr(self.env, "telemetry", None) if self.env else None

    # -- Table 2 primitives ---------------------------------------------

    def mmio_read(self) -> float:
        """Host 64-bit uncacheable MMIO read (row 1)."""
        tel = self._telemetry()
        if tel is not None:
            tel.count("mmio_ops", op="read")
        return self.params.mmio_read_uc * self._stall_factor()

    def mmio_write(self) -> float:
        """Host 64-bit uncacheable MMIO write (row 2)."""
        tel = self._telemetry()
        if tel is not None:
            tel.count("mmio_ops", op="write")
        return self.params.mmio_write_uc * self._stall_factor()

    def msix_send(self, via_ioctl: bool = True) -> float:
        """Device-side cost of raising an MSI-X (rows 3-4)."""
        tel = self._telemetry()
        if tel is not None:
            tel.count("msix_sends", via="ioctl" if via_ioctl else "reg")
        return (self.params.msix_send_ioctl if via_ioctl
                else self.params.msix_send_reg)

    def msix_receive(self) -> float:
        """Host-side cost of taking the interrupt (row 5)."""
        return self.params.msix_receive

    def msix_e2e(self) -> float:
        """Send-to-handler latency including the PCIe trip (row 6)."""
        return (self.params.msix_send_ioctl + self.params.msix_receive
                + self.msix_propagation())

    def msix_propagation(self) -> float:
        """The wire/bridge portion of MSI-X delivery: the time between
        the sender finishing its send overhead and the host core starting
        its receive overhead."""
        return (self.params.msix_e2e - self.params.msix_send_ioctl
                - self.params.msix_receive) * self._stall_factor()

    def partition_plan(self):
        """The conservative-PDES partition this link's minima justify.

        Three domains -- ``host``, ``ic``, ``nic`` -- with lookahead
        windows from :meth:`HwParams.domain_lookahead`. Fault-injected
        stalls only *inflate* link latencies, so the unstalled minima
        stay valid lower bounds. Feed this to
        :meth:`~repro.sim.core.Environment.enable_partition`; an
        unusable plan (any window <= 0) falls back to the serial kernel
        there.
        """
        from repro.sim.partition import HOST, INTERCONNECT, NIC, PartitionPlan

        return PartitionPlan(names=(HOST, INTERCONNECT, NIC),
                             lookahead=self.params.domain_lookahead(),
                             default=HOST)

    # -- path factories ---------------------------------------------------

    def host_path(self, pte: PteType) -> MemPath:
        """How the host reaches SmartNIC DRAM with PTE type ``pte``."""
        return HostMmioPath(self.params, pte)

    def nic_path(self, pte: PteType) -> MemPath:
        """How a SmartNIC agent reaches its own (SoC-local) DRAM."""
        if pte is PteType.WB:
            return LocalWbPath(self.params, self.params.nic_access_wb)
        return LocalUcPath(self.params)

    def host_local_path(self) -> MemPath:
        """Host coherent shared memory (on-host deployments)."""
        return HostSharedMemPath(self.params)
