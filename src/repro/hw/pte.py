"""Page-table-entry memory types (paper section 5.3.1).

The host maps the SmartNIC's exported MMIO aperture with one of these
types; the choice determines every read/write cost on that mapping.
"""

from __future__ import annotations

import enum


class PteType(enum.Enum):
    """x86 memory types relevant to MMIO mappings."""

    #: Write-back: cached + coherent. Only legal for host-local DRAM (or
    #: for device memory behind a coherent interconnect, section 7.3.3).
    WB = "write-back"

    #: Write-combining: reads uncached; stores land in the WC buffer and
    #: drain as a burst (explicitly flushed with sfence).
    WC = "write-combining"

    #: Write-through: stores go straight to memory, loads are cached, so
    #: repeated loads of one cache line are cheap (needs software
    #: coherence via clflush, section 5.3.2).
    WT = "write-through"

    #: Uncacheable: every access is a full PCIe transaction. The
    #: unoptimized baseline.
    UC = "uncacheable"

    @property
    def caches_reads(self) -> bool:
        """Whether loads from this mapping can hit the CPU cache."""
        return self in (PteType.WB, PteType.WT)

    @property
    def buffers_writes(self) -> bool:
        """Whether stores to this mapping coalesce before reaching PCIe."""
        return self in (PteType.WB, PteType.WC)
