"""Per-socket turbo governor (paper section 7.2.4).

AMD's turbo governor boosts core frequency when few cores are awake.
Timer ticks keep *idle* cores out of deep C-states, so with ticks every
core counts as awake and nobody gets boosted -- this is the interference
the Wave VM scheduler removes.

The anchor points below are fitted so the Fig 5 improvements reproduce:
+11.2% @ 1 active vCPU, +9.7% @ 31, +1.7% @ 128 (the last being pure
tick-overhead savings), given the 1.7% tick overhead in HwParams.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.params import HwParams

#: (awake physical cores, GHz) anchors; linear interpolation between.
#: f(64)=3.2 is the all-awake floor with this workload; 3.5 is max boost.
#: [fit: 3.5/3.2 * (1/(1-0.017)) = 1.112 -> Fig 5's 11.2% @ 1 vCPU;
#:  3.452/3.2 * (1/(1-0.017)) = 1.097 -> 9.7% @ 31 vCPUs]
DEFAULT_FREQ_CURVE: Tuple[Tuple[int, float], ...] = (
    (1, 3.50),
    (8, 3.50),
    (16, 3.48),
    (31, 3.452),
    (32, 3.40),
    (48, 3.30),
    (64, 3.20),
)


class TurboGovernor:
    """Maps the number of awake physical cores to the boosted frequency
    applied to every running core in the socket."""

    def __init__(self, params: HwParams,
                 curve: Sequence[Tuple[int, float]] = DEFAULT_FREQ_CURVE,
                 max_ghz: float = None):
        if not curve:
            raise ValueError("frequency curve must not be empty")
        self.params = params
        self._xs: List[int] = [n for n, _ in curve]
        self._ys: List[float] = [f for _, f in curve]
        if self._xs != sorted(self._xs):
            raise ValueError("curve anchors must be sorted by core count")
        #: Optional cap emulating the HSMP frequency limit (section 7.3.3).
        self.max_ghz = max_ghz
        # frequency() runs on every core sleep/wake transition; the
        # domain is tiny (64 core counts x the occasional cap change),
        # so memoise. Keyed on the cap because it is mutable.
        self._memo: Dict[Tuple[int, Optional[float]], float] = {}

    def frequency(self, awake_physical_cores: int) -> float:
        """Boosted GHz when ``awake_physical_cores`` are out of deep sleep."""
        key = (awake_physical_cores, self.max_ghz)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        ghz = self._interpolate(awake_physical_cores)
        self._memo[key] = ghz
        return ghz

    def _interpolate(self, awake_physical_cores: int) -> float:
        n = max(self._xs[0], min(awake_physical_cores, self._xs[-1]))
        i = bisect.bisect_left(self._xs, n)
        if self._xs[i] == n:
            ghz = self._ys[i]
        else:
            x0, x1 = self._xs[i - 1], self._xs[i]
            y0, y1 = self._ys[i - 1], self._ys[i]
            ghz = y0 + (y1 - y0) * (n - x0) / (x1 - x0)
        if self.max_ghz is not None:
            ghz = min(ghz, self.max_ghz)
        return ghz
