"""The SmartNIC's DMA engine (paper sections 2.1, 5.2).

DMA moves bulk data between host DRAM and SmartNIC DRAM without CPU
involvement; launching a descriptor costs a few MMIO doorbell writes.
Transfers can be awaited synchronously or checked asynchronously, and
descriptors can be batched (iPipe reports up to 8.7x from batching --
batching amortizes the setup writes and the base latency).
"""

from __future__ import annotations

from typing import List

from repro.hw.params import HwParams
from repro.sim import Environment, Event


class DmaEngine:
    """One bidirectional DMA engine shared by all queues on a NIC."""

    def __init__(self, env: Environment, params: HwParams):
        self.env = env
        self.params = params
        self.transfers = 0
        self.bytes_moved = 0

    def setup_cost(self) -> float:
        """CPU cost (producer side) of launching one descriptor batch."""
        return self.params.dma_setup_writes * self.params.mmio_write_uc

    def transfer_duration(self, nbytes: int) -> float:
        """Wire time for ``nbytes``: fixed latency + streaming time."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.params.dma_base_latency + nbytes / self.params.dma_bandwidth

    def transfer(self, nbytes: int) -> Event:
        """Start one transfer; the returned event fires at completion.

        The *caller* separately accounts :meth:`setup_cost` as CPU time;
        the transfer itself runs on the engine, concurrently with CPU
        work (this is the asynchronous mode prior work shows is 2-7x
        faster; a synchronous caller simply yields the event at once).
        """
        self.transfers += 1
        self.bytes_moved += nbytes
        return self.env.timeout(self.transfer_duration(nbytes))

    def transfer_batched(self, sizes: List[int]) -> Event:
        """Move several buffers under one descriptor batch.

        One base latency for the whole batch -- the batching optimization
        from iPipe/Floem that Wave reuses.
        """
        total = sum(sizes)
        self.transfers += 1
        self.bytes_moved += total
        duration = (self.params.dma_base_latency
                    + total / self.params.dma_bandwidth)
        return self.env.timeout(duration)
