"""The SmartNIC's DMA engine (paper sections 2.1, 5.2).

DMA moves bulk data between host DRAM and SmartNIC DRAM without CPU
involvement; launching a descriptor costs a few MMIO doorbell writes.
Transfers can be awaited synchronously or checked asynchronously, and
descriptors can be batched (iPipe reports up to 8.7x from batching --
batching amortizes the setup writes and the base latency).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.hw.params import HwParams
from repro.sim import Environment, Event


class DmaEngine:
    """One bidirectional DMA engine shared by all queues on a NIC."""

    def __init__(self, env: Environment, params: HwParams):
        self.env = env
        self.params = params
        self.transfers = 0
        self.bytes_moved = 0
        #: Injected completion timeouts the engine recovered from.
        self.timeouts = 0
        #: Descriptor reissues (one or more per timed-out transfer).
        self.retries = 0

    def setup_cost(self) -> float:
        """CPU cost (producer side) of launching one descriptor batch."""
        return self.params.dma_setup_writes * self.params.mmio_write_uc

    def transfer_duration(self, nbytes: int) -> float:
        """Wire time for ``nbytes``: fixed latency + streaming time.

        During a transient interconnect stall (fault injection) the wire
        portion is inflated by the stall factor.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        duration = (self.params.dma_base_latency
                    + nbytes / self.params.dma_bandwidth)
        faults = getattr(self.env, "faults", None)
        if faults is not None:
            duration *= faults.interconnect_factor()
        return duration

    def _retry_penalty(self) -> float:
        """Extra delay from injected completion timeouts.

        Each lost completion costs one timeout window plus an
        exponentially backed-off pause before the reissue; after
        ``dma_max_retries`` reissues the final attempt is forced
        through, so a transfer always completes in bounded time.
        """
        faults = getattr(self.env, "faults", None)
        if faults is None:
            return 0.0
        penalty = 0.0
        backoff = self.params.dma_retry_backoff_ns
        attempts = 0
        while (attempts < self.params.dma_max_retries
               and faults.on_dma_attempt()):
            penalty += self.params.dma_timeout_ns + backoff
            backoff *= 2.0
            attempts += 1
            self.timeouts += 1
            self.retries += 1
        if attempts:
            tel = getattr(self.env, "telemetry", None)
            if tel is not None:
                tel.count("dma_retries", by=attempts)
        return penalty

    def _observe(self, nbytes: int, duration: float,
                 batched: bool = False, ctx=None) -> None:
        """Record one transfer's span + metrics (no-op when disabled).

        A DMA op is a designated causal root: without an inbound ``ctx``
        the span mints a fresh request context of its own.
        """
        tel = getattr(self.env, "telemetry", None)
        if tel is None:
            return
        tel.span("dma.transfer", "dma", dur_ns=duration, ctx=ctx,
                 root=True, nbytes=nbytes)
        tel.count("dma_transfers", batched=batched)
        tel.count("dma_bytes", by=nbytes)
        tel.observe("dma_transfer_ns", duration)

    def launch(self, nbytes: int, ctx=None) -> "Tuple[float, Event]":
        """Start one transfer; returns ``(duration, completion)``.

        ``duration`` includes any injected retry penalty, and
        ``completion`` fires exactly ``duration`` ns from now -- one
        atomic draw, so callers that need both the number and the event
        (e.g. :class:`~repro.queues.dma.DmaQueue`) see one consistent
        outcome per descriptor.
        """
        self.transfers += 1
        self.bytes_moved += nbytes
        duration = self._retry_penalty() + self.transfer_duration(nbytes)
        self._observe(nbytes, duration, ctx=ctx)
        return duration, self.env.timeout(duration)

    def transfer(self, nbytes: int, ctx=None) -> Event:
        """Start one transfer; the returned event fires at completion.

        The *caller* separately accounts :meth:`setup_cost` as CPU time;
        the transfer itself runs on the engine, concurrently with CPU
        work (this is the asynchronous mode prior work shows is 2-7x
        faster; a synchronous caller simply yields the event at once).
        """
        self.transfers += 1
        self.bytes_moved += nbytes
        duration = self._retry_penalty() + self.transfer_duration(nbytes)
        self._observe(nbytes, duration, ctx=ctx)
        return self.env.timeout(duration)

    def transfer_batched(self, sizes: List[int], ctx=None) -> Event:
        """Move several buffers under one descriptor batch.

        One base latency for the whole batch -- the batching optimization
        from iPipe/Floem that Wave reuses.
        """
        total = sum(sizes)
        self.transfers += 1
        self.bytes_moved += total
        duration = self._retry_penalty() + self.transfer_duration(total)
        self._observe(total, duration, batched=True, ctx=ctx)
        return self.env.timeout(duration)
