"""Assembles one simulated machine: host CPU + SmartNIC + interconnect."""

from __future__ import annotations

from repro.hw.cpu import HostCpu
from repro.hw.nic import SmartNic
from repro.hw.params import HwParams
from repro.hw.pcie import Interconnect
from repro.sim import Environment


class Machine:
    """One server as deployed in the paper's testbed (section 7).

    Building a machine installs the partitioned parallel-DES engine on
    ``env`` (host / interconnect / NIC domains with lookahead windows
    from this deployment's Table 2 minima -- see
    ``repro.sim.partition``) unless the environment already carries
    scheduled events or an engine, ``use_partition=False`` is passed,
    ``REPRO_NO_PARTITION`` is set, or the parameter set yields a
    zero-lookahead plan; in every fallback case the serial single-queue
    kernel runs, with byte-identical results.
    """

    def __init__(self, env: Environment, params: HwParams = None,
                 use_partition: bool = None):
        self.env = env
        self.params = params or HwParams.pcie()
        self.interconnect = Interconnect(self.params, env=env)
        if env.partition is None and not (
                env._queue or env._staged or (
                    env._wheel is not None and env._wheel._count)):
            env.enable_partition(self.interconnect.partition_plan(),
                                 use_partition=use_partition)
        self.host = HostCpu(env, self.params)
        self.nic = SmartNic(env, self.params, self.interconnect)

    @classmethod
    def default(cls, env: Environment) -> "Machine":
        """The paper's testbed: PCIe-attached Mount Evans, Zen3 host."""
        return cls(env, HwParams.pcie())

    @classmethod
    def upi(cls, env: Environment, nic_ghz: float = 3.0) -> "Machine":
        """Section 7.3.3's UPI-attached emulated SmartNIC."""
        return cls(env, HwParams.upi(nic_ghz=nic_ghz))
