"""Host CPU topology: sockets, CCXs, cores, SMT threads, C-states.

Mirrors the paper's testbed: AMD Zen3, 2 sockets x 64 physical cores x
2 hyperthreads, 8-core CCXs with a private L3 (section 7). The awake /
deep-sleep accounting feeds the per-socket :class:`TurboGovernor`
(section 7.2.4): a core that stays idle long enough enters a deep
C-state and stops counting against the socket's turbo budget.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.hw.params import HwParams
from repro.hw.turbo import TurboGovernor
from repro.sim import Environment, TimeWeightedValue

#: Set to force the event-per-tick legacy loop instead of the analytic
#: virtual-tick accounting (debugging / the equivalence tests).
LEGACY_TICKS_ENV = "REPRO_LEGACY_TICKS"


class Core:
    """One physical core with ``threads_per_core`` SMT threads."""

    def __init__(self, env: Environment, core_id: int, socket: "Socket",
                 ccx_id: int, params: HwParams):
        self.env = env
        self.id = core_id
        self.socket = socket
        self.ccx_id = ccx_id
        self.params = params
        self.busy_threads = 0
        self.deep_sleep = False
        self._idle_since: Optional[float] = 0.0
        self._wake_epoch = 0  # invalidates stale deep-sleep checks
        #: Reified tick time (legacy loop increments; virtual-tick
        #: accounting adds the analytic part on top, see ``tick_time``).
        self._tick_base = 0.0
        self._tick_anchor: Optional[float] = None
        self._tick_period = 0.0
        self._tick_cost = 0.0
        self._ticks_hold_awake = False
        self._arm_deep_sleep_check()  # cores start idle

    def _ticks_elapsed(self) -> int:
        """Ticks delivered since the anchor: ``max{k >= 0 : k*period <=
        now - anchor}``, evaluated in the *time* domain.

        Comparing ``k * period`` against the elapsed time directly (and
        correcting the float-division guess against that criterion)
        keeps the boundary test exact at any magnitude: a fixed quotient
        nudge either under-forgives (relative error in a large quotient
        exceeds it, dropping a delivered tick) or over-forgives (a read
        genuinely just below a boundary gains an undelivered tick).
        Each correction loop runs at most once or twice -- the division
        guess is within a couple of ulps of the true index.
        """
        elapsed = self.env.now - self._tick_anchor
        period = self._tick_period
        ticks = int(elapsed / period)
        while ticks > 0 and ticks * period > elapsed:
            ticks -= 1
        while (ticks + 1) * period <= elapsed:
            ticks += 1
        return ticks

    @property
    def tick_time(self) -> float:
        """CPU time consumed by timer ticks on this core (both threads).

        With virtual ticks enabled this is computed analytically --
        ``floor(elapsed / period) * cost`` ticks have been delivered
        since the anchor -- so no per-tick event ever enters the
        scheduler queue. The boundary matches the legacy loop for runs:
        ``env.run(until=t)`` dispatches events *at* ``t``, so a read
        after a run ending exactly on a tick boundary includes that
        tick in both modes.

        Boundary caveat (see ``docs/performance.md``): equivalence with
        the legacy loop is guaranteed for reads strictly *between* tick
        timestamps. At an exact boundary, a read from an event that the
        legacy kernel happens to dispatch *before* the tick event of the
        same timestamp sees one fewer tick there than the analytic value
        -- intra-timestamp ordering against the tick event is the one
        thing a never-materialized tick cannot reproduce.
        """
        if self._tick_anchor is None:
            return self._tick_base
        return self._tick_base + self._ticks_elapsed() * self._tick_cost

    @tick_time.setter
    def tick_time(self, value: float) -> None:
        if self._tick_anchor is None:
            self._tick_base = value
        else:
            self._tick_base = value - self._ticks_elapsed() * self._tick_cost

    @property
    def awake(self) -> bool:
        """Out of deep sleep (counted by the turbo governor)."""
        return not self.deep_sleep

    @property
    def smt_factor(self) -> float:
        """Per-thread throughput factor given current SMT contention."""
        if self.busy_threads >= 2:
            return self.params.smt_efficiency
        return 1.0

    def thread_started(self) -> None:
        """A thread began running on this core."""
        self.busy_threads += 1
        self._idle_since = None
        self.poke()

    def thread_stopped(self) -> None:
        """A thread stopped running on this core."""
        if self.busy_threads <= 0:
            raise RuntimeError(f"core {self.id}: thread_stopped underflow")
        self.busy_threads -= 1
        if self.busy_threads == 0:
            self._idle_since = self.env.now
            self._arm_deep_sleep_check()

    def poke(self) -> None:
        """Any activity (run, tick, interrupt): leave/defer deep sleep."""
        self._wake_epoch += 1
        if self.deep_sleep:
            self.deep_sleep = False
            self.socket.core_woke(self)
        if self.busy_threads == 0:
            self._idle_since = self.env.now
            self._arm_deep_sleep_check()

    def enable_virtual_ticks(self, period: float, cost: float) -> None:
        """Deliver timer ticks analytically instead of one event each.

        Requires ``period < deep_sleep_entry`` (the caller checks): every
        tick then pokes the core before the idle residency elapses, so
        an awake core provably never sleeps -- that edge is modelled by
        the ``_ticks_hold_awake`` flag and needs no events at all. The
        only observable tick *edge* left is a core that is already in
        deep sleep when ticks start: its wake-up at the next tick
        boundary is reified as a single real event.

        ``tick_time`` reads return the analytic value from here on.
        """
        if period <= 0:
            raise ValueError(f"tick period must be positive, got {period}")
        if self._tick_anchor is not None:
            raise RuntimeError(f"core {self.id}: virtual ticks already on")
        self._tick_base = self.tick_time
        self._tick_anchor = self.env.now
        self._tick_period = period
        self._tick_cost = cost
        self._ticks_hold_awake = True
        # Pending deep-sleep checks would now race a tick they cannot
        # see; invalidate them (a tick always lands first).
        self._wake_epoch += 1
        if self.deep_sleep:
            def wake():
                yield self.env.timeout(period)
                self.poke()

            self.env.process(wake(), name=f"c{self.id}-tickwake")

    def _arm_deep_sleep_check(self) -> None:
        if self._ticks_hold_awake:
            # Virtual ticks land inside the residency window: the idle
            # check can never pass, so don't even schedule it.
            return
        epoch = self._wake_epoch

        def check():
            yield self.env.timeout(self.params.deep_sleep_entry)
            if (self._wake_epoch == epoch and self.busy_threads == 0
                    and not self.deep_sleep):
                self.deep_sleep = True
                self.socket.core_slept(self)

        self.env.process(check(), name=f"c{self.id}-csleep")


class Ccx:
    """A core complex: 8 physical cores sharing a private L3."""

    def __init__(self, ccx_id: int, cores: List[Core]):
        self.id = ccx_id
        self.cores = cores


class Socket:
    """One CPU socket; turbo is governed per socket (section 7.2.4)."""

    def __init__(self, env: Environment, socket_id: int, params: HwParams,
                 governor: Optional[TurboGovernor] = None):
        self.env = env
        self.id = socket_id
        self.params = params
        self.governor = governor or TurboGovernor(params)
        self.cores: List[Core] = []
        self.ccxs: List[Ccx] = []
        base = socket_id * params.cores_per_socket
        for i in range(params.cores_per_socket):
            ccx_id = i // params.cores_per_ccx
            self.cores.append(Core(env, base + i, self, ccx_id, params))
        for ccx_id in range(params.cores_per_socket // params.cores_per_ccx):
            lo = ccx_id * params.cores_per_ccx
            self.ccxs.append(Ccx(ccx_id, self.cores[lo:lo + params.cores_per_ccx]))
        self._awake = len(self.cores)
        #: Tracks the boosted frequency over time; a thread busy for an
        #: interval accrues work = (integral of frequency) * smt_factor.
        self.freq = TimeWeightedValue(env, self.governor.frequency(self._awake))

    @property
    def awake_cores(self) -> int:
        return self._awake

    def core_slept(self, core: Core) -> None:
        self._awake -= 1
        self.freq.set(self.governor.frequency(self._awake))

    def core_woke(self, core: Core) -> None:
        self._awake += 1
        self.freq.set(self.governor.frequency(self._awake))

    def current_ghz(self) -> float:
        return self.freq.value


class HostCpu:
    """The whole host package: all sockets, flat core list."""

    def __init__(self, env: Environment, params: HwParams):
        self.env = env
        self.params = params
        self.sockets = [Socket(env, s, params)
                        for s in range(params.host_sockets)]
        self.cores: List[Core] = [c for s in self.sockets for c in s.cores]

    def start_ticks(self, socket: Socket) -> None:
        """Deliver 1 ms timer ticks to every core in ``socket``.

        Each tick consumes ``tick_cost`` CPU time on the core and, on an
        idle core, keeps it out of deep sleep -- the interference the
        Wave VM policy eliminates (section 7.2.4).

        By default ticks are accounted analytically (see
        :meth:`Core.enable_virtual_ticks`): zero scheduler events per
        tick, identical observable behaviour. The event-per-tick loop is
        kept for two cases: ``REPRO_LEGACY_TICKS`` in the environment
        (debugging, equivalence tests), and ``tick_period >=
        deep_sleep_entry`` -- slow ticks have real sleep/wake edges
        between ticks, so the analytic model would diverge.
        """
        params = self.params
        legacy = (bool(os.environ.get(LEGACY_TICKS_ENV))
                  or params.tick_period >= params.deep_sleep_entry)
        for core in socket.cores:
            if legacy:
                self.env.process(self._tick_loop(core),
                                 name=f"tick-c{core.id}")
            else:
                core.enable_virtual_ticks(params.tick_period,
                                          params.tick_cost)

    def _tick_loop(self, core: Core):
        period = self.params.tick_period
        while True:
            yield self.env.timeout(period)
            core.poke()
            core.tick_time += self.params.tick_cost
