"""Wave: Offloading Resource Management to SmartNIC Cores (ASPLOS 2025).

Simulation-based reproduction. The package is organised bottom-up:

- :mod:`repro.sim` -- discrete-event simulation kernel.
- :mod:`repro.hw` -- host CPU, SmartNIC SoC, and PCIe/UPI interconnect models.
- :mod:`repro.queues` -- Floem-style shared-memory queues (MMIO / DMA backed).
- :mod:`repro.core` -- the Wave framework: API, agents, transactions.
- :mod:`repro.ghost` -- ghOSt-style kernel scheduling class substrate.
- :mod:`repro.sched` -- scheduling policies (FIFO, Shinjuku, VM, CFS).
- :mod:`repro.mem` -- memory management substrate and the SOL ML policy.
- :mod:`repro.rpc` -- Stubby-like RPC stack and steering policies.
- :mod:`repro.workloads` -- RocksDB model, load generators, busy_loop.
- :mod:`repro.bench` -- one experiment module per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
